// Stage-backend registry tests: every entropy x lossless backend pair must
// round-trip the golden-corpus datasets within the bound, streams must stay
// thread-count invariant for the non-default backends (the default pair is
// locked byte-exactly by test_golden_streams.cpp), an unknown backend id in
// a stream must be a clean cliz::Error, and an infeasible tANS alphabet
// must downgrade to Huffman on encode rather than fail.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault_injection.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/autotune.hpp"
#include "src/core/chunked.hpp"
#include "src/core/cliz.hpp"
#include "src/core/codec_context.hpp"
#include "src/core/stage_backends.hpp"
#include "src/entropy/tans.hpp"
#include "src/lossless/lossless.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

constexpr double kEb = 1e-3;
constexpr float kFill = 9.96921e36f;

// --- the golden-corpus datasets (same generators as the golden locks) ----

NdArray<float> plain_field() {
  const Shape shape({40, 48});
  NdArray<float> a(shape);
  Rng rng(1001);
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t c = 0; c < 48; ++c) {
      const double v = 0.03 * static_cast<double>(r) -
                       0.015 * static_cast<double>(c) +
                       0.25 * static_cast<double>((r + c) % 9) +
                       0.05 * rng.uniform();
      a[r * 48 + c] = static_cast<float>(v);
    }
  }
  return a;
}

struct MaskedField {
  NdArray<float> data;
  MaskMap mask;
};

MaskedField masked_field() {
  const Shape shape({16, 12, 14});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(2002);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 13 == 0) {
      mask.mutable_data()[i] = 0;
      data[i] = kFill;
      continue;
    }
    const double v = 0.1 * static_cast<double>(i % 14) -
                     0.07 * static_cast<double>((i / 14) % 12) +
                     0.04 * rng.uniform();
    data[i] = static_cast<float>(v);
  }
  return {std::move(data), std::move(mask)};
}

NdArray<float> periodic_field() {
  const Shape shape({36, 10, 12});
  NdArray<float> a(shape);
  Rng rng(3003);
  for (std::size_t t = 0; t < 36; ++t) {
    const double season =
        0.1 * static_cast<double>((t % 6) * (11 - (t % 6)));
    for (std::size_t p = 0; p < 120; ++p) {
      const double v = season + 0.02 * static_cast<double>(p % 12) +
                       0.03 * rng.uniform();
      a[t * 120 + p] = static_cast<float>(v);
    }
  }
  return a;
}

NdArray<float> chunked_field() {
  const Shape shape({30, 12, 10});
  NdArray<float> a(shape);
  Rng rng(4004);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double v = 0.05 * static_cast<double>(i % 120) -
                     0.002 * static_cast<double>(i / 120) +
                     0.03 * rng.uniform();
    a[i] = static_cast<float>(v);
  }
  return a;
}

PipelineConfig masked_config() {
  PipelineConfig c = PipelineConfig::defaults(3);
  c.dynamic_fitting = true;
  c.classify_bins = true;
  return c;
}

PipelineConfig periodic_config() {
  PipelineConfig c = PipelineConfig::defaults(3);
  c.period = 6;
  c.time_dim = 0;
  return c;
}

struct BackendPair {
  EntropyBackend entropy;
  LosslessBackend lossless;
};

const BackendPair kAllPairs[] = {
    {EntropyBackend::kHuffman, LosslessBackend::kLz},
    {EntropyBackend::kHuffman, LosslessBackend::kStore},
    {EntropyBackend::kTans, LosslessBackend::kLz},
    {EntropyBackend::kTans, LosslessBackend::kStore},
};

ClizOptions options_for(const BackendPair& p) {
  ClizOptions o;
  o.entropy = p.entropy;
  o.lossless = p.lossless;
  return o;
}

// --- round trips ---------------------------------------------------------

TEST(StageBackends, AllPairsRoundTripGoldenCorpus) {
  const auto plain = plain_field();
  const auto mf = masked_field();
  const auto periodic = periodic_field();
  for (const BackendPair& pair : kAllPairs) {
    SCOPED_TRACE(std::string("entropy=") +
                 entropy_backend_name(pair.entropy) +
                 " lossless=" + lossless_backend_name(pair.lossless));
    const ClizOptions opts = options_for(pair);

    CodecContext cctx;
    const auto plain_stream = ClizCompressor(PipelineConfig::defaults(2),
                                             opts)
                                  .compress(plain, kEb, nullptr, cctx);
    EXPECT_EQ(cctx.stats.entropy_backend,
              static_cast<std::uint8_t>(pair.entropy));
    EXPECT_FALSE(cctx.stats.entropy_downgraded);
    CodecContext dctx;
    const auto plain_out = ClizCompressor::decompress(plain_stream, dctx);
    EXPECT_LE(error_stats(plain.flat(), plain_out.flat()).max_abs_error,
              kEb);
    EXPECT_EQ(dctx.stats.entropy_backend,
              static_cast<std::uint8_t>(pair.entropy));

    const auto masked_stream = ClizCompressor(masked_config(), opts)
                                   .compress(mf.data, kEb, &mf.mask);
    const auto masked_out = ClizCompressor::decompress(masked_stream);
    EXPECT_LE(error_stats(mf.data.flat(), masked_out.flat(), &mf.mask)
                  .max_abs_error,
              kEb);
    for (std::size_t i = 0; i < masked_out.size(); ++i) {
      if (!mf.mask.valid(i)) {
        ASSERT_EQ(masked_out[i], kFill);
      }
    }

    const auto periodic_stream = ClizCompressor(periodic_config(), opts)
                                     .compress(periodic, kEb);
    const auto periodic_out = ClizCompressor::decompress(periodic_stream);
    EXPECT_LE(error_stats(periodic.flat(), periodic_out.flat()).max_abs_error,
              kEb);
  }
}

TEST(StageBackends, AllPairsRoundTripChunkedFrames) {
  const auto data = chunked_field();
  for (const BackendPair& pair : kAllPairs) {
    SCOPED_TRACE(std::string("entropy=") +
                 entropy_backend_name(pair.entropy) +
                 " lossless=" + lossless_backend_name(pair.lossless));
    ChunkedOptions copts;
    copts.chunks = 4;
    copts.codec = options_for(pair);
    const auto frame = chunked_compress(data, kEb,
                                        PipelineConfig::defaults(3), nullptr,
                                        copts);
    const auto out = chunked_decompress(frame);
    EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, kEb);
  }
}

TEST(StageBackends, DefaultOptionsReproduceDefaultBackends) {
  // ClizOptions{} must mean huffman + lz: the golden byte-identity locks in
  // test_golden_streams.cpp depend on the default constructor.
  EXPECT_EQ(ClizOptions{}.entropy, EntropyBackend::kHuffman);
  EXPECT_EQ(ClizOptions{}.lossless, LosslessBackend::kLz);
  const auto data = plain_field();
  EXPECT_EQ(ClizCompressor(PipelineConfig::defaults(2)).compress(data, kEb),
            ClizCompressor(PipelineConfig::defaults(2),
                           options_for(kAllPairs[0]))
                .compress(data, kEb));
}

// --- thread-count invariance ---------------------------------------------
// Mirror of GoldenStreams.StreamsAreThreadCountInvariant for the
// non-default pair: work partitioning never depends on the worker count,
// whatever the backends.

struct ThreadCountGuard {
  int saved = hardware_threads();
  ~ThreadCountGuard() { set_thread_count(saved); }
};

TEST(StageBackends, TansStoreStreamsAreThreadCountInvariant) {
  const auto plain = plain_field();
  const auto mf = masked_field();
  const auto periodic = periodic_field();
  ClizOptions opts;
  opts.entropy = EntropyBackend::kTans;
  opts.lossless = LosslessBackend::kStore;

  ThreadCountGuard guard;
  set_thread_count(1);
  const auto serial_plain =
      ClizCompressor(PipelineConfig::defaults(2), opts).compress(plain, kEb);
  const auto serial_masked = ClizCompressor(masked_config(), opts)
                                 .compress(mf.data, kEb, &mf.mask);
  const auto serial_periodic =
      ClizCompressor(periodic_config(), opts).compress(periodic, kEb);

  const int max_threads = std::max(4, guard.saved);
  for (const int threads : {2, max_threads}) {
    set_thread_count(threads);
    EXPECT_EQ(ClizCompressor(PipelineConfig::defaults(2), opts)
                  .compress(plain, kEb),
              serial_plain)
        << "plain tans/store stream differs at " << threads << " thread(s)";
    EXPECT_EQ(ClizCompressor(masked_config(), opts)
                  .compress(mf.data, kEb, &mf.mask),
              serial_masked)
        << "masked tans/store stream differs at " << threads << " thread(s)";
    EXPECT_EQ(ClizCompressor(periodic_config(), opts).compress(periodic, kEb),
              serial_periodic)
        << "periodic tans/store stream differs at " << threads
        << " thread(s)";
  }
}

// --- unknown backend id --------------------------------------------------

/// Offset of the entropy byte in the unwrapped stream: the only byte that
/// differs between a Huffman and a tANS compression of the same input
/// before the coding tables start.
std::size_t entropy_byte_offset(const std::vector<std::uint8_t>& huffman,
                                const std::vector<std::uint8_t>& tans) {
  const std::size_t n = std::min(huffman.size(), tans.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (huffman[i] != tans[i]) return i;
  }
  ADD_FAILURE() << "streams do not diverge";
  return 0;
}

TEST(StageBackends, UnknownEntropyIdIsCleanError) {
  const auto data = plain_field();
  ClizOptions tans_opts;
  tans_opts.entropy = EntropyBackend::kTans;
  const auto huffman_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(2)).compress(data, kEb));
  const auto tans_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(2), tans_opts)
          .compress(data, kEb));
  const std::size_t pos = entropy_byte_offset(huffman_raw, tans_raw);
  // Sanity: the diverging byte really is the entropy byte of both streams.
  ASSERT_EQ(huffman_raw[pos], 0u);  // (huffman id 0 << 1) | unclassified
  ASSERT_EQ(tans_raw[pos], 2u);     // (tans id 1 << 1) | unclassified

  // Every unknown id (2..63 in the id field) must be a clean Error; the
  // two registered ids keep decoding. 0x80 flips the framed-container bit
  // (id stays huffman) over a serial payload, so it must also reject
  // cleanly — via the framing layout/bounds checks rather than the id
  // lookup (test_entropy_framing.cpp covers the framed wire in depth).
  const std::uint8_t overrides[] = {4, 5, 6, 0x80, 0xFE, 0xFF};
  for (const auto& fault :
       fault::byte_override_cases(huffman_raw, pos, overrides)) {
    const auto stream = lossless_compress(fault.bytes);
    EXPECT_THROW((void)ClizCompressor::decompress(stream), Error)
        << fault.label;
  }
  EXPECT_EQ(find_entropy_backend(0)->id, EntropyBackend::kHuffman);
  EXPECT_EQ(find_entropy_backend(1)->id, EntropyBackend::kTans);
  EXPECT_EQ(find_entropy_backend(2), nullptr);
  EXPECT_EQ(find_entropy_backend(0xFF), nullptr);
}

TEST(StageBackends, TansStreamMutationsNeverCrash) {
  // Seeded bit flips over a tANS stream: the decoder must reject or decode,
  // never crash (the tANS state/refill path has its own bounds checks).
  const auto data = periodic_field();
  ClizOptions opts;
  opts.entropy = EntropyBackend::kTans;
  const auto stream =
      ClizCompressor(periodic_config(), opts).compress(data, kEb);
  for (const auto& fault : fault::bit_flip_cases(stream, 60, 808)) {
    try {
      (void)ClizCompressor::decompress(fault.bytes);
    } catch (const Error&) {
      // detected corruption
    } catch (const std::bad_alloc&) {
      // bounded allocation bomb
    }
  }
}

// --- encode-side downgrade -----------------------------------------------

TEST(StageBackends, InfeasibleTansAlphabetDowngradesToHuffman) {
  // Wide-range noise against a tiny bound: the residual census spreads over
  // more than 2^15 distinct codes, which no tANS table here can hold. The
  // encoder must fall back to Huffman, patch the stream's entropy byte, and
  // still round-trip.
  const Shape shape({64, 64, 32});
  NdArray<float> data(shape);
  Rng rng(6006);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(0.02 * rng.uniform());
  }
  const double eb = 1e-7;
  ClizOptions opts;
  opts.entropy = EntropyBackend::kTans;

  CodecContext cctx;
  const auto stream = ClizCompressor(PipelineConfig::defaults(3), opts)
                          .compress(data, eb, nullptr, cctx);
  EXPECT_TRUE(cctx.stats.entropy_downgraded);
  EXPECT_EQ(cctx.stats.entropy_backend,
            static_cast<std::uint8_t>(EntropyBackend::kHuffman));

  CodecContext dctx;
  const auto out = ClizCompressor::decompress(stream, dctx);
  EXPECT_EQ(dctx.stats.entropy_backend,
            static_cast<std::uint8_t>(EntropyBackend::kHuffman));
  EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, eb);
}

// --- store/RLE lossless backend ------------------------------------------

TEST(StageBackends, StoreBackendUsesRleWhenRunsPay) {
  std::vector<std::uint8_t> runs(4096, 7);
  for (std::size_t i = 1024; i < 2048; ++i) runs[i] = 42;
  const auto frame = lossless_compress(runs, LosslessBackend::kStore);
  EXPECT_EQ(lossless_frame_backend(frame), LosslessBackend::kStore);
  EXPECT_LT(frame.size(), runs.size() / 4);
  EXPECT_EQ(lossless_decompress(frame), runs);
}

TEST(StageBackends, StoreBackendFallsBackToStoredOnNoise) {
  Rng rng(31337);
  std::vector<std::uint8_t> noise(4096);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto frame = lossless_compress(noise, LosslessBackend::kStore);
  // RLE would expand noise, so the frame is the stored fallback — which
  // reads back as the (shared) kLz container.
  EXPECT_EQ(lossless_frame_backend(frame), LosslessBackend::kLz);
  EXPECT_LE(frame.size(), noise.size() + 16);
  EXPECT_EQ(lossless_decompress(frame), noise);
}

TEST(StageBackends, RleFrameFaultsAreCleanErrors) {
  std::vector<std::uint8_t> runs(2048, 9);
  for (std::size_t i = 0; i < runs.size(); i += 100) runs[i] = 1;
  const auto frame = lossless_compress(runs, LosslessBackend::kStore);
  ASSERT_EQ(lossless_frame_backend(frame), LosslessBackend::kStore);
  for (const auto& fault : fault::bit_flip_cases(frame, 40, 515)) {
    try {
      const auto out = lossless_decompress(fault.bytes);
      // Undetected only if the decode reproduced the payload exactly
      // (flip landed in slack space).
      EXPECT_EQ(out, runs) << fault.label;
    } catch (const Error&) {
      // detected corruption
    }
  }
  for (const auto& fault : fault::truncation_cases(frame, 24)) {
    EXPECT_THROW((void)lossless_decompress(fault.bytes), Error)
        << fault.label;
  }
}

// --- tANS unit behaviour -------------------------------------------------

TEST(StageBackends, TansCodecRoundTripsSkewedSymbols) {
  std::unordered_map<std::uint32_t, std::uint64_t> freq;
  std::vector<std::uint32_t> symbols;
  Rng rng(99);
  for (std::size_t i = 0; i < 5000; ++i) {
    // Skewed draw over a sparse alphabet.
    const std::uint32_t sym =
        rng.uniform_index(10) == 0
            ? static_cast<std::uint32_t>(100 + rng.uniform_index(40) * 3)
            : static_cast<std::uint32_t>(rng.uniform_index(4));
    symbols.push_back(sym);
    ++freq[sym];
  }
  TansCodec codec;
  const unsigned table_log = TansCodec::pick_table_log(freq.size());
  ASSERT_TRUE(codec.rebuild_from_frequencies(freq, table_log));

  std::uint32_t state = 1u << table_log;
  std::vector<std::uint32_t> stack;
  for (std::size_t i = symbols.size(); i-- > 0;) {
    codec.encode_symbol(symbols[i], state, stack);
  }
  BitWriter bits;
  bits.put_bits(state - (1u << table_log), static_cast<int>(table_log));
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    bits.put_bits(*it & 0xFFFFu, static_cast<int>(*it >> 16));
  }
  const auto payload = bits.finish_view();

  ByteWriter table;
  codec.serialize(table);
  TansCodec parsed;
  ByteReader table_reader(table.bytes());
  parsed.parse(table_reader, table_log);

  BitReader reader(payload);
  std::uint32_t dstate =
      (1u << table_log) +
      static_cast<std::uint32_t>(reader.get_bits(
          static_cast<int>(table_log)));
  for (const std::uint32_t expected : symbols) {
    ASSERT_EQ(parsed.decode_symbol(dstate, reader), expected);
  }
}

TEST(StageBackends, TansRejectsOversizedAlphabet) {
  std::unordered_map<std::uint32_t, std::uint64_t> freq;
  for (std::uint32_t s = 0; s < 40; ++s) freq[s] = 1;
  TansCodec codec;
  EXPECT_FALSE(codec.rebuild_from_frequencies(freq, 5));  // 40 > 2^5
  EXPECT_TRUE(codec.rebuild_from_frequencies(freq, 6));
}

// --- autotune backend grid -----------------------------------------------

TEST(StageBackends, AutotuneRecordsDeterministicBackendChoice) {
  const auto data = periodic_field();
  AutotuneOptions opts;
  opts.sampling_rate = 0.2;
  const auto first = autotune(data, kEb, nullptr, opts);
  const auto second = autotune(data, kEb, nullptr, opts);
  ASSERT_EQ(first.backend_candidates.size(), 4u);
  EXPECT_EQ(first.best_entropy, second.best_entropy);
  EXPECT_EQ(first.best_lossless, second.best_lossless);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(first.backend_candidates[i].estimated_ratio,
              second.backend_candidates[i].estimated_ratio)
        << "grid trial " << i;
    EXPECT_GT(first.backend_candidates[i].estimated_ratio, 0.0);
  }
  // The winner is at least as good as the default pair, and the choice is
  // reproduced by compressing with the recorded backends.
  EXPECT_GE(std::max_element(first.backend_candidates.begin(),
                             first.backend_candidates.end(),
                             [](const BackendCandidate& a,
                                const BackendCandidate& b) {
                               return a.estimated_ratio < b.estimated_ratio;
                             })
                ->estimated_ratio,
            first.backend_candidates[0].estimated_ratio);
  ClizOptions copts;
  copts.entropy = first.best_entropy;
  copts.lossless = first.best_lossless;
  const auto stream = ClizCompressor(first.best, copts).compress(data, kEb);
  const auto out = ClizCompressor::decompress(stream);
  EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, kEb);
}

TEST(StageBackends, AutotuneBackendGridCanBeDisabled) {
  const auto data = plain_field();
  AutotuneOptions opts;
  opts.sampling_rate = 0.2;
  opts.consider_backends = false;
  const auto result = autotune(data, kEb, nullptr, opts);
  EXPECT_TRUE(result.backend_candidates.empty());
  EXPECT_EQ(result.best_entropy, EntropyBackend::kHuffman);
  EXPECT_EQ(result.best_lossless, LosslessBackend::kLz);
}

}  // namespace
}  // namespace cliz
