#include "src/quantizer/linear_quantizer.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"

namespace cliz {
namespace {

TEST(Quantizer, RejectsBadParameters) {
  EXPECT_THROW(LinearQuantizer<float>(0.0), Error);
  EXPECT_THROW(LinearQuantizer<float>(-1.0), Error);
  EXPECT_THROW(LinearQuantizer<float>(1.0, 1), Error);
}

TEST(Quantizer, ExactPredictionGivesCenterCode) {
  const LinearQuantizer<float> q(0.1);
  std::vector<float> outliers;
  float v = 5.0f;
  const auto code = q.quantize(v, 5.0f, outliers);
  EXPECT_EQ(code, q.radius());
  EXPECT_EQ(q.signed_bin(code), 0);
  EXPECT_TRUE(outliers.empty());
}

TEST(Quantizer, ReconstructionMatchesBetweenSides) {
  const LinearQuantizer<float> q(0.05);
  Rng rng(1);
  std::vector<float> outliers;
  std::vector<std::uint32_t> codes;
  std::vector<float> recons;
  std::vector<float> preds;
  for (int i = 0; i < 1000; ++i) {
    const float pred = static_cast<float>(rng.uniform(-10.0, 10.0));
    float v = pred + static_cast<float>(rng.normal() * 0.3);
    const float orig = v;
    codes.push_back(q.quantize(v, pred, outliers));
    EXPECT_LE(std::abs(static_cast<double>(v) - static_cast<double>(orig)),
              0.05);
    recons.push_back(v);
    preds.push_back(pred);
  }
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(q.recover(codes[i], preds[i], outliers, cursor), recons[i]);
  }
  EXPECT_EQ(cursor, outliers.size());
}

TEST(Quantizer, HugeDifferenceBecomesOutlier) {
  const LinearQuantizer<float> q(1e-3, 256);
  std::vector<float> outliers;
  float v = 1e9f;
  const auto code = q.quantize(v, 0.0f, outliers);
  EXPECT_EQ(code, 0u);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0], 1e9f);
  EXPECT_EQ(v, 1e9f);  // outliers keep the exact value

  std::size_t cursor = 0;
  EXPECT_EQ(q.recover(0, 0.0f, outliers, cursor), 1e9f);
}

TEST(Quantizer, LargeMagnitudeFloatRoundingFallsBackToOutlier) {
  // At value ~1e8 a float ULP is ~8, far above this bound; the recon check
  // must route the point to the escape path instead of breaking the bound.
  const LinearQuantizer<float> q(1e-4);
  std::vector<float> outliers;
  float v = 1.00000008e8f;
  const float orig = v;
  q.quantize(v, 1.0e8f, outliers);
  EXPECT_LE(std::abs(static_cast<double>(v) - static_cast<double>(orig)),
            1e-4);
}

TEST(Quantizer, OutlierStreamTruncationThrows) {
  const LinearQuantizer<float> q(0.1);
  std::vector<float> empty;
  std::size_t cursor = 0;
  EXPECT_THROW(q.recover(0, 0.0f, empty, cursor), Error);
}

TEST(Quantizer, OutOfRangeCodeThrows) {
  const LinearQuantizer<float> q(0.1, 128);
  std::vector<float> outliers;
  std::size_t cursor = 0;
  EXPECT_THROW(q.recover(256, 0.0f, outliers, cursor), Error);
}

struct BoundCase {
  double eb;
  double spread;
};

class QuantizerBoundSweep : public ::testing::TestWithParam<BoundCase> {};

TEST_P(QuantizerBoundSweep, ErrorBoundHolds) {
  const auto [eb, spread] = GetParam();
  const LinearQuantizer<float> q(eb);
  Rng rng(42);
  std::vector<float> outliers;
  for (int i = 0; i < 5000; ++i) {
    const float pred = static_cast<float>(rng.uniform(-100.0, 100.0));
    float v = pred + static_cast<float>(rng.normal() * spread);
    const float orig = v;
    const auto code = q.quantize(v, pred, outliers);
    EXPECT_LE(std::abs(static_cast<double>(v) - static_cast<double>(orig)),
              eb)
        << "eb=" << eb << " spread=" << spread << " code=" << code;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuantizerBoundSweep,
    ::testing::Values(BoundCase{1e-1, 0.01}, BoundCase{1e-1, 10.0},
                      BoundCase{1e-3, 0.01}, BoundCase{1e-3, 10.0},
                      BoundCase{1e-5, 0.001}, BoundCase{1e-5, 100.0},
                      BoundCase{10.0, 1.0}, BoundCase{1e-7, 0.1}));

TEST(Quantizer, DoubleSpecializationBoundHolds) {
  const LinearQuantizer<double> q(1e-9);
  Rng rng(43);
  std::vector<double> outliers;
  for (int i = 0; i < 2000; ++i) {
    const double pred = rng.uniform(-1.0, 1.0);
    double v = pred + rng.normal() * 1e-8;
    const double orig = v;
    q.quantize(v, pred, outliers);
    EXPECT_LE(std::abs(v - orig), 1e-9);
  }
}

TEST(Quantizer, SignedBinSymmetry) {
  const LinearQuantizer<float> q(0.5);
  std::vector<float> outliers;
  float above = 1.0f;
  float below = -1.0f;
  const auto ca = q.quantize(above, 0.0f, outliers);
  const auto cb = q.quantize(below, 0.0f, outliers);
  EXPECT_EQ(q.signed_bin(ca), -q.signed_bin(cb));
  EXPECT_EQ(q.signed_bin(ca), 1);
}

}  // namespace
}  // namespace cliz
