#include "src/predictor/interp_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/common/rng.hpp"

namespace cliz {
namespace {

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> o(n);
  std::iota(o.begin(), o.end(), std::size_t{0});
  return o;
}

/// Smooth synthetic field plus noise.
std::vector<float> smooth_field(const Shape& shape, std::uint64_t seed,
                                double noise) {
  Rng rng(seed);
  std::vector<float> data(shape.size());
  for (std::size_t i = 0; i < shape.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += std::sin(0.15 * static_cast<double>(c[d]) +
                    0.7 * static_cast<double>(d));
    }
    data[i] = static_cast<float>(v + noise * rng.normal());
  }
  return data;
}

struct EngineCase {
  DimVec dims;
  double eb;
  FittingKind fit;
};

class EngineRoundTrip : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineRoundTrip, EncodeDecodeParityAndBound) {
  const auto& param = GetParam();
  const Shape shape(param.dims);
  const auto axes = fused_axes(shape, FusionSpec::none(shape.ndims()));
  const auto order = identity_order(shape.ndims());
  const LinearQuantizer<float> q(param.eb);

  const auto original = smooth_field(shape, 77, 0.05);
  std::vector<float> work = original;
  std::vector<std::uint32_t> codes;
  std::vector<float> outliers;
  interp_encode(work.data(), axes, order, param.fit, q, outliers, nullptr,
                [&](std::size_t, std::uint32_t code) {
                  codes.push_back(code);
                });
  EXPECT_EQ(codes.size(), shape.size());

  // Encoder's working buffer must already satisfy the bound (it holds the
  // reconstruction).
  for (std::size_t i = 0; i < shape.size(); ++i) {
    ASSERT_LE(std::abs(static_cast<double>(work[i]) -
                       static_cast<double>(original[i])),
              param.eb);
  }

  std::vector<float> decoded(shape.size(), 0.0f);
  std::size_t cursor = 0;
  std::size_t next = 0;
  interp_decode(decoded.data(), axes, order, param.fit, q,
                std::span<const float>(outliers), cursor, nullptr,
                [&](std::size_t) { return codes[next++]; });

  // Decoder output must match the encoder's reconstruction bit-exactly.
  for (std::size_t i = 0; i < shape.size(); ++i) {
    ASSERT_EQ(decoded[i], work[i]) << "offset " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineRoundTrip,
    ::testing::Values(
        EngineCase{{64}, 1e-2, FittingKind::kCubic},
        EngineCase{{64}, 1e-2, FittingKind::kLinear},
        EngineCase{{33, 17}, 1e-3, FittingKind::kCubic},
        EngineCase{{33, 17}, 1e-3, FittingKind::kLinear},
        EngineCase{{8, 9, 10}, 1e-4, FittingKind::kCubic},
        EngineCase{{8, 9, 10}, 1e-2, FittingKind::kLinear},
        EngineCase{{5, 4, 3, 6}, 1e-3, FittingKind::kCubic}));

TEST(Engine, MaskedPointsAreSkippedAndDoNotPolluteNeighbours) {
  const Shape shape({32, 32});
  const auto axes = fused_axes(shape, FusionSpec::none(2));
  const auto order = identity_order(2);
  const LinearQuantizer<float> q(1e-3);

  auto clean = smooth_field(shape, 5, 0.0);
  // Masked version: garbage fill values in a block.
  auto dirty = clean;
  std::vector<std::uint8_t> validity(shape.size(), 1);
  for (std::size_t r = 10; r < 20; ++r) {
    for (std::size_t c = 10; c < 20; ++c) {
      validity[r * 32 + c] = 0;
      dirty[r * 32 + c] = 1e30f;
    }
  }

  std::vector<std::uint32_t> codes;
  std::vector<float> outliers;
  std::vector<float> work = dirty;
  interp_encode(work.data(), axes, order, FittingKind::kCubic, q, outliers,
                validity.data(),
                [&](std::size_t off, std::uint32_t code) {
                  ASSERT_EQ(validity[off], 1) << "masked point emitted";
                  codes.push_back(code);
                });
  // 100 masked points are skipped.
  EXPECT_EQ(codes.size(), shape.size() - 100);

  // No outlier explosion: garbage never entered a prediction, so the valid
  // field stays smooth and predictable.
  EXPECT_LT(outliers.size(), 8u);

  // Valid points obey the bound relative to the clean data.
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (validity[i] == 0) continue;
    ASSERT_LE(std::abs(static_cast<double>(work[i]) -
                       static_cast<double>(clean[i])),
              1e-3);
  }

  // Decode parity on the valid region.
  std::vector<float> decoded(shape.size(), 0.0f);
  std::size_t cursor = 0;
  std::size_t next = 0;
  interp_decode(decoded.data(), axes, order, FittingKind::kCubic, q,
                std::span<const float>(outliers), cursor, validity.data(),
                [&](std::size_t) { return codes[next++]; });
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (validity[i] == 0) continue;
    ASSERT_EQ(decoded[i], work[i]);
  }
}

TEST(Engine, MaskedAnchorIsSkipped) {
  const Shape shape({8});
  const auto axes = fused_axes(shape, FusionSpec::none(1));
  const auto order = identity_order(1);
  const LinearQuantizer<float> q(0.1);
  std::vector<std::uint8_t> validity(8, 1);
  validity[0] = 0;
  std::vector<float> work{1e30f, 1.0f, 1.1f, 1.2f, 1.1f, 1.0f, 0.9f, 1.0f};
  std::vector<std::uint32_t> codes;
  std::vector<float> outliers;
  interp_encode(work.data(), axes, order, FittingKind::kLinear, q, outliers,
                validity.data(),
                [&](std::size_t off, std::uint32_t code) {
                  EXPECT_NE(off, 0u);
                  codes.push_back(code);
                });
  EXPECT_EQ(codes.size(), 7u);
}

TEST(Engine, ProbeErrorPrefersCubicOnSmoothCurves) {
  const Shape shape({256});
  const auto axes = fused_axes(shape, FusionSpec::none(1));
  const auto order = identity_order(1);
  std::vector<float> data(shape.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double t = static_cast<double>(i) / 255.0;
    data[i] = static_cast<float>(t * t * t - 0.5 * t);
  }
  const double cubic_err = interp_probe_error(
      data.data(), axes, order, FittingKind::kCubic, nullptr);
  const double linear_err = interp_probe_error(
      data.data(), axes, order, FittingKind::kLinear, nullptr);
  EXPECT_LT(cubic_err, linear_err);
}

TEST(Engine, ProbeErrorPrefersLinearOnNoisyData) {
  const Shape shape({4096});
  const auto axes = fused_axes(shape, FusionSpec::none(1));
  const auto order = identity_order(1);
  Rng rng(9);
  std::vector<float> data(shape.size());
  for (auto& v : data) v = static_cast<float>(rng.normal());
  const double cubic_err = interp_probe_error(
      data.data(), axes, order, FittingKind::kCubic, nullptr);
  const double linear_err = interp_probe_error(
      data.data(), axes, order, FittingKind::kLinear, nullptr);
  // On white noise the wider cubic stencil only adds variance.
  EXPECT_LT(linear_err, cubic_err);
}

TEST(Engine, PredictWithAllInvalidRefsGivesZero) {
  const float data[4] = {100.0f, 200.0f, 300.0f, 400.0f};
  InterpRefs refs{};
  refs.offset = {0, 1, 2, 3};
  refs.in_range = {true, true, true, true};
  const std::uint8_t validity[4] = {0, 0, 0, 0};
  EXPECT_EQ(interp_predict(data, refs, validity, FittingKind::kCubic), 0.0f);
  EXPECT_EQ(interp_predict(data, refs, validity, FittingKind::kLinear), 0.0f);
}

}  // namespace
}  // namespace cliz
