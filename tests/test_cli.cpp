// End-to-end tests of the clizc command-line tool: spawn the real binary
// (path injected by CMake) and verify its file outputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

#include "src/common/status.hpp"
#include "src/io/archive.hpp"
#include "src/metrics/metrics.hpp"
#include "src/ndarray/ndarray.hpp"

#ifndef CLIZC_PATH
#error "CLIZC_PATH must be defined by the build system"
#endif

namespace cliz {
namespace {

namespace fs = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("clizc_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static int run(const std::string& args) {
    const std::string cmd =
        std::string(CLIZC_PATH) + " " + args + " 2>/dev/null >/dev/null";
    return std::system(cmd.c_str());
  }

  /// run() unpacked to the child's actual exit code, for the taxonomy
  /// exit-code contract (2 bad args, 3 corrupt, 4 limit, ...).
  static int run_exit(const std::string& args) {
    const int status = run(args);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  static std::vector<float> read_floats(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
    std::vector<float> out(bytes.size() / sizeof(float));
    std::memcpy(out.data(), bytes.data(), out.size() * sizeof(float));
    return out;
  }

  fs::path dir_;
};

TEST_F(CliTest, GenCompressDecompressRoundTrip) {
  ASSERT_EQ(run("gen Hurricane-T --scale 0.08 -o " + path("h.f32")), 0);
  const auto original = read_floats(path("h.f32"));
  ASSERT_GT(original.size(), 1000u);

  // Hurricane-T at scale 0.08: dims floors kick in -> 24x48x48.
  ASSERT_EQ(original.size(), 24u * 48 * 48);
  ASSERT_EQ(run("compress " + path("h.f32") + " -d 24,48,48 -o " +
                path("h.cliz") + " -r 1e-3 --tune 0.05"),
            0);
  ASSERT_LT(fs::file_size(path("h.cliz")),
            fs::file_size(path("h.f32")) / 2);

  ASSERT_EQ(run("decompress " + path("h.cliz") + " -o " + path("h2.f32")), 0);
  const auto recon = read_floats(path("h2.f32"));
  ASSERT_EQ(recon.size(), original.size());
  const auto stats = error_stats(original, recon);
  const double eb = abs_bound_from_relative(original, 1e-3);
  EXPECT_LE(stats.max_abs_error, eb);
}

TEST_F(CliTest, BaselineCodecsViaFlag) {
  ASSERT_EQ(run("gen CESM-T --scale 0.03 -o " + path("t.f32")), 0);
  const auto original = read_floats(path("t.f32"));
  // CESM-T floors: lat/lon minimum 32 applies at this scale -> 26x54x108.
  ASSERT_EQ(original.size(), 26u * 54 * 108);
  for (const std::string codec : {"sz3", "qoz", "zfp", "sperr"}) {
    const std::string out = path(codec + ".bin");
    ASSERT_EQ(run("compress " + path("t.f32") + " -d 26,54,108 -o " + out +
                  " -r 1e-3 -c " + codec),
              0)
        << codec;
    ASSERT_EQ(run("decompress " + out + " -o " + path(codec + ".f32")), 0)
        << codec;
    const auto recon = read_floats(path(codec + ".f32"));
    const double eb = abs_bound_from_relative(original, 1e-3);
    EXPECT_LE(error_stats(original, recon).max_abs_error, eb) << codec;
  }
}

TEST_F(CliTest, MaskFillFlagShrinksMaskedData) {
  ASSERT_EQ(run("gen SSH --scale 0.1 -o " + path("ssh.f32")), 0);
  const auto original = read_floats(path("ssh.f32"));
  ASSERT_EQ(original.size(), 48u * 38 * 32);
  // Same ABSOLUTE bound for both runs: a relative bound without the mask
  // would key off the 1e36 fill values and be uselessly loose.
  const auto mask = MaskMap::from_fill_values(
      NdArray<float>(Shape({48, 38, 32}), original));
  const double eb = abs_bound_from_relative(original, 1e-3, &mask);
  const std::string eb_s = std::to_string(eb);
  ASSERT_EQ(run("compress " + path("ssh.f32") + " -d 48,38,32 -o " +
                path("m.cliz") + " -e " + eb_s + " --mask-fill --tune 0.05"),
            0);
  ASSERT_EQ(run("compress " + path("ssh.f32") + " -d 48,38,32 -o " +
                path("nm.cliz") + " -e " + eb_s + " --tune 0.05"),
            0);
  EXPECT_LT(fs::file_size(path("m.cliz")), fs::file_size(path("nm.cliz")));
}

TEST_F(CliTest, InfoDetectsCodec) {
  ASSERT_EQ(run("gen Hurricane-T --scale 0.08 -o " + path("h.f32")), 0);
  ASSERT_EQ(run("compress " + path("h.f32") + " -d 24,48,48 -o " +
                path("h.sz3") + " -r 1e-2 -c sz3"),
            0);
  EXPECT_EQ(run("info " + path("h.sz3")), 0);
}

TEST_F(CliTest, ArchiveListAndExtract) {
  // Build a small archive through the library, then exercise the CLI.
  NdArray<float> data(Shape({16, 16}));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i % 7);
  }
  {
    ArchiveWriter w(path("a.clza"));
    w.add_variable_with("sz3", "VAR_A", data, 1e-3);
  }
  EXPECT_EQ(run("archive-list " + path("a.clza")), 0);
  EXPECT_EQ(run("info " + path("a.clza")), 0);
  ASSERT_EQ(run("archive-extract " + path("a.clza") + " VAR_A -o " +
                path("a.f32")),
            0);
  const auto recon = read_floats(path("a.f32"));
  ASSERT_EQ(recon.size(), data.size());
  EXPECT_LE(error_stats(data.flat(), recon).max_abs_error, 1e-3);
}

TEST_F(CliTest, AnalyzeReportsQualityAndExitCode) {
  ASSERT_EQ(run("gen Hurricane-T --scale 0.08 -o " + path("h.f32")), 0);
  ASSERT_EQ(run("compress " + path("h.f32") + " -d 24,48,48 -o " +
                path("h.sz3") + " -e 0.01 -c sz3"),
            0);
  ASSERT_EQ(run("decompress " + path("h.sz3") + " -o " + path("h2.f32")), 0);
  // Within bound -> exit 0.
  EXPECT_EQ(run("analyze " + path("h.f32") + " " + path("h2.f32") +
                " -d 24,48,48 -e 0.01"),
            0);
  // Impossibly tight bound -> nonzero exit signalling violation.
  EXPECT_NE(run("analyze " + path("h.f32") + " " + path("h2.f32") +
                " -d 24,48,48 -e 1e-12"),
            0);
}

TEST_F(CliTest, ArchiveCreateFromRawFiles) {
  ASSERT_EQ(run("gen Hurricane-T --scale 0.08 -o " + path("h.f32")), 0);
  ASSERT_EQ(run("gen SSH --scale 0.1 -o " + path("s.f32")), 0);
  ASSERT_EQ(run("archive-create " + path("m.clza") + " HURR=" +
                path("h.f32") + ":24,48,48:sz3 SSH=" + path("s.f32") +
                ":48,38,32 -r 1e-3 --mask-fill --tune 0.05"),
            0);
  const ArchiveReader reader(path("m.clza"));
  ASSERT_EQ(reader.variables().size(), 2u);
  EXPECT_EQ(reader.info("HURR").codec, "sz3");
  EXPECT_EQ(reader.info("SSH").codec, "cliz");
  ASSERT_EQ(run("archive-extract " + path("m.clza") + " HURR -o " +
                path("h2.f32")),
            0);
  const auto orig = read_floats(path("h.f32"));
  const auto recon = read_floats(path("h2.f32"));
  const double eb = abs_bound_from_relative(orig, 1e-3);
  EXPECT_LE(error_stats(orig, recon).max_abs_error, eb);
}

TEST_F(CliTest, Float64CompressDecompressRoundTrip) {
  // Write a small f64 raw file, compress with --f64 at a sub-float bound,
  // decompress (dtype auto-detected) and verify bit-level precision.
  const std::size_t n = 8 * 20 * 20;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = 1.0 + 0.01 * std::sin(0.1 * static_cast<double>(i));
  }
  {
    std::ofstream out(path("p.f64"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(n * sizeof(double)));
  }
  ASSERT_EQ(run("compress " + path("p.f64") + " -d 8,20,20 -o " +
                path("p.cliz") + " --f64 -e 1e-10 -c sz3"),
            0);
  ASSERT_EQ(run("decompress " + path("p.cliz") + " -o " + path("p2.f64")), 0);
  std::ifstream in(path("p2.f64"), std::ios::binary);
  std::vector<double> recon(n);
  in.read(reinterpret_cast<char*>(recon.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  ASSERT_TRUE(in.good());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_LE(std::abs(recon[i] - values[i]), 1e-10);
  }
}

TEST_F(CliTest, VerifyFlagProducesDecodableStreamWithinBound) {
  ASSERT_EQ(run("gen Hurricane-T --scale 0.08 -o " + path("h.f32")), 0);
  ASSERT_EQ(run("compress " + path("h.f32") + " -d 24,48,48 -o " +
                path("h.cliz") + " -e 0.5 --verify"),
            0);
  ASSERT_EQ(run("decompress " + path("h.cliz") + " -o " + path("h2.f32")), 0);
  const auto orig = read_floats(path("h.f32"));
  const auto recon = read_floats(path("h2.f32"));
  ASSERT_EQ(orig.size(), recon.size());
  EXPECT_LE(error_stats(orig, recon).max_abs_error, 0.5);
  // Chunked and f64 paths take --verify too.
  EXPECT_EQ(run("compress " + path("h.f32") + " -d 24,48,48 -o " +
                path("hc.clks") + " -e 0.5 --verify --chunks 3"),
            0);
  // Non-cliz codecs reject it up front.
  EXPECT_NE(run("compress " + path("h.f32") + " -d 24,48,48 -o " +
                path("h.sz3") + " -e 0.5 -c sz3 --verify"),
            0);
}

TEST_F(CliTest, SalvageFlagRecoversFromCorruptTrailer) {
  ASSERT_EQ(run("gen Hurricane-T --scale 0.08 -o " + path("h.f32")), 0);
  ASSERT_EQ(run("archive-create " + path("a.clza") + " HURR=" +
                path("h.f32") + ":24,48,48:sz3 -e 0.5"),
            0);
  ASSERT_EQ(run("archive-extract " + path("a.clza") + " HURR -o " +
                path("good.f32")),
            0);

  // Stomp the 12-byte trailer: strict open must fail, salvage must not.
  {
    std::fstream f(path("a.clza"),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(-12, std::ios::end);
    const char junk[12] = {};
    f.write(junk, sizeof junk);
  }
  EXPECT_NE(run("archive-list " + path("a.clza")), 0);
  EXPECT_EQ(run("archive-list " + path("a.clza") + " --salvage"), 0);
  ASSERT_EQ(run("archive-extract " + path("a.clza") + " HURR -o " +
                path("salvaged.f32") + " --salvage"),
            0);
  const auto good = read_floats(path("good.f32"));
  const auto salvaged = read_floats(path("salvaged.f32"));
  ASSERT_EQ(good.size(), salvaged.size());
  EXPECT_EQ(std::memcmp(good.data(), salvaged.data(),
                        good.size() * sizeof(float)),
            0);
}

TEST_F(CliTest, GovernorFlagsMapToExitCodes) {
  ASSERT_EQ(run("gen SSH --scale 0.1 -o " + path("s.f32")), 0);
  ASSERT_EQ(run("compress " + path("s.f32") + " -d 48,38,32 -o " +
                path("s.cliz") + " -r 1e-3"),
            0);

  // A declared-output budget below the stream's true size is a limit
  // refusal: exit 4, nothing written.
  EXPECT_EQ(run_exit("decompress " + path("s.cliz") + " -o " +
                     path("s2.f32") + " --max-output-bytes 64"),
            4);
  EXPECT_FALSE(fs::exists(path("s2.f32")));

  // A generous budget decodes identically to the unlimited run.
  ASSERT_EQ(run("decompress " + path("s.cliz") + " -o " + path("s3.f32") +
                " --max-output-bytes 1000000000"),
            0);
  ASSERT_EQ(run("decompress " + path("s.cliz") + " -o " + path("s4.f32")), 0);
  const auto capped = read_floats(path("s3.f32"));
  const auto plain = read_floats(path("s4.f32"));
  ASSERT_EQ(capped.size(), plain.size());
  EXPECT_EQ(std::memcmp(capped.data(), plain.data(),
                        capped.size() * sizeof(float)),
            0);

  // A truncated stream is corruption: exit 3.
  {
    std::ifstream in(path("s.cliz"), std::ios::binary);
    std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path("cut.cliz"), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(run_exit("decompress " + path("cut.cliz") + " -o " +
                     path("cut.f32")),
            3);
}

TEST_F(CliTest, TiledCompressExtractRegionMatchesWindow) {
  ASSERT_EQ(run("gen Hurricane-T --scale 0.08 -o " + path("h.f32")), 0);
  ASSERT_EQ(run("compress " + path("h.f32") + " -d 24,48,48 --tile 8x16x16 "
                "-o " + path("h.clz") + " -r 1e-3"),
            0);
  ASSERT_EQ(run("decompress " + path("h.clz") + " -o " + path("full.f32")),
            0);
  ASSERT_EQ(run("extract " + path("h.clz") +
                " --region 4:12,8:24,16:40 -o " + path("win.f32") +
                " --stats"),
            0);
  const auto full = read_floats(path("full.f32"));
  const auto win = read_floats(path("win.f32"));
  ASSERT_EQ(full.size(), 24u * 48 * 48);
  ASSERT_EQ(win.size(), 8u * 16 * 24);
  // The extracted window must be bit-identical to the full decode's.
  std::size_t w = 0;
  for (std::size_t t = 4; t < 12; ++t) {
    for (std::size_t y = 8; y < 24; ++y) {
      for (std::size_t x = 16; x < 40; ++x) {
        ASSERT_EQ(win[w++], full[(t * 48 + y) * 48 + x])
            << "mismatch at t=" << t << " y=" << y << " x=" << x;
      }
    }
  }
  // Region extraction needs a chunked stream: a monolithic one is caller
  // misuse (exit 2 in the error taxonomy).
  ASSERT_EQ(run("compress " + path("h.f32") + " -d 24,48,48 -o " +
                path("mono.clz") + " -r 1e-3"),
            0);
  EXPECT_EQ(run_exit("extract " + path("mono.clz") +
                     " --region 0:2,0:2,0:2 -o " + path("m.f32")),
            2);
}

TEST_F(CliTest, InfoPrintsTileTableForTiledStream) {
  ASSERT_EQ(run("gen Hurricane-T --scale 0.08 -o " + path("h.f32")), 0);
  ASSERT_EQ(run("compress " + path("h.f32") + " -d 24,48,48 --tile 12x24x24 "
                "-o " + path("h.clz") + " -r 1e-3"),
            0);
  const std::string cmd = std::string(CLIZC_PATH) + " info " + path("h.clz") +
                          " > " + path("info.txt") + " 2>/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::ifstream in(path("info.txt"));
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  // The per-tile index table: 2x2x2 tiles with geometry and CRC status.
  EXPECT_NE(text.find("8 tile(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("origin"), std::string::npos) << text;
  EXPECT_NE(text.find("12,24,24"), std::string::npos) << text;
  EXPECT_NE(text.find("ok"), std::string::npos) << text;
}

TEST_F(CliTest, ArchiveExtractRegionMatchesFullExtract) {
  ASSERT_EQ(run("gen SSH --scale 0.1 -o " + path("s.f32")), 0);
  ASSERT_EQ(run("archive-create " + path("a.clza") + " SSH=" + path("s.f32") +
                ":48,38,32 -r 1e-3 --tile 16x19x16"),
            0);
  ASSERT_EQ(run("archive-extract " + path("a.clza") + " SSH -o " +
                path("full.f32")),
            0);
  ASSERT_EQ(run("archive-extract " + path("a.clza") + " SSH -o " +
                path("win.f32") + " --region 10:30,5:24,8:32 --stats"),
            0);
  const auto full = read_floats(path("full.f32"));
  const auto win = read_floats(path("win.f32"));
  ASSERT_EQ(full.size(), 48u * 38 * 32);
  ASSERT_EQ(win.size(), 20u * 19 * 24);
  std::size_t w = 0;
  for (std::size_t t = 10; t < 30; ++t) {
    for (std::size_t y = 5; y < 24; ++y) {
      for (std::size_t x = 8; x < 32; ++x) {
        ASSERT_EQ(win[w++], full[(t * 38 + y) * 32 + x])
            << "mismatch at t=" << t << " y=" << y << " x=" << x;
      }
    }
  }
  // Out-of-bounds region is caller misuse (exit 2).
  EXPECT_EQ(run_exit("archive-extract " + path("a.clza") + " SSH -o " +
                     path("bad.f32") + " --region 0:100,0:2,0:2"),
            2);
}

TEST_F(CliTest, BadInvocationsFailCleanly) {
  EXPECT_NE(run(""), 0);
  EXPECT_NE(run("frobnicate"), 0);
  EXPECT_NE(run("compress missing.f32 -d 4,4 -o out"), 0);
  EXPECT_NE(run("decompress /nonexistent -o out"), 0);
  EXPECT_NE(run("gen NOPE -o " + path("x.f32")), 0);
  // Wrong dims for the file size must be rejected.
  ASSERT_EQ(run("gen Hurricane-T --scale 0.08 -o " + path("h.f32")), 0);
  EXPECT_NE(run("compress " + path("h.f32") + " -d 3,3 -o " + path("x")), 0);
}

}  // namespace
}  // namespace cliz
