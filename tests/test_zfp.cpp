#include "src/zfp/zfp_like.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

NdArray<float> wave_array(const DimVec& dims, std::uint64_t seed,
                          double noise = 0.01) {
  const Shape shape(dims);
  NdArray<float> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += std::cos(0.1 * static_cast<double>(c[d]) +
                    0.5 * static_cast<double>(d));
    }
    a[i] = static_cast<float>(v + noise * rng.normal());
  }
  return a;
}

struct ZfpCase {
  DimVec dims;
  double eb;
};

class ZfpRoundTrip : public ::testing::TestWithParam<ZfpCase> {};

TEST_P(ZfpRoundTrip, BoundHoldsEverywhere) {
  const auto& [dims, eb] = GetParam();
  const auto data = wave_array(dims, 41);
  const auto stream = ZfpLikeCompressor().compress(data, eb);
  const auto recon = ZfpLikeCompressor::decompress(stream);
  ASSERT_EQ(recon.shape(), data.shape());
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, eb);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ZfpRoundTrip,
    ::testing::Values(ZfpCase{{64}, 1e-2}, ZfpCase{{64}, 1e-5},
                      ZfpCase{{16, 16}, 1e-3},
                      // Partial blocks in every dimension.
                      ZfpCase{{17, 19}, 1e-3}, ZfpCase{{5, 6, 7}, 1e-3},
                      ZfpCase{{8, 12, 16}, 1e-1}, ZfpCase{{8, 12, 16}, 1e-6},
                      ZfpCase{{3, 4, 5, 6}, 1e-3}, ZfpCase{{1, 1, 9}, 1e-3},
                      ZfpCase{{2, 3}, 1e-4}));

TEST(ZfpLike, AllZeroBlocksAreNearlyFree) {
  NdArray<float> data(Shape({64, 64}));
  const auto stream = ZfpLikeCompressor().compress(data, 1e-3);
  EXPECT_LT(stream.size(), 200u);
  const auto recon = ZfpLikeCompressor::decompress(stream);
  for (std::size_t i = 0; i < recon.size(); ++i) EXPECT_EQ(recon[i], 0.0f);
}

TEST(ZfpLike, HugeFillValuesSurviveViaEscapes) {
  // Mask-style fill values next to small data: error bound must still
  // hold on every point, which for 1e36 neighbours means escapes/deep
  // planes — the weakness the paper exploits.
  const Shape shape({8, 8});
  NdArray<float> data(shape);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = i % 3 == 0 ? 9.96921e36f : 1.5f;
  }
  const auto stream = ZfpLikeCompressor().compress(data, 1e-2);
  const auto recon = ZfpLikeCompressor::decompress(stream);
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-2);
}

TEST(ZfpLike, MaskedDataCostsFarMoreThanCleanData) {
  const Shape shape({32, 32});
  NdArray<float> clean(shape);
  NdArray<float> masked(shape);
  Rng rng(6);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const auto c = shape.coords(i);
    const float v = static_cast<float>(
        std::sin(0.1 * static_cast<double>(c[0])) +
        std::sin(0.1 * static_cast<double>(c[1])));
    clean[i] = v;
    masked[i] = (c[0] + c[1]) % 7 == 0 ? 9.96921e36f : v;
  }
  const auto s_clean = ZfpLikeCompressor().compress(clean, 1e-3);
  const auto s_masked = ZfpLikeCompressor().compress(masked, 1e-3);
  EXPECT_GT(s_masked.size(), 2 * s_clean.size());
}

TEST(ZfpLike, NonFiniteValuesRoundTripViaRawMode) {
  NdArray<float> data(Shape({4, 4}));
  data[0] = std::numeric_limits<float>::infinity();
  data[5] = -std::numeric_limits<float>::infinity();
  data[7] = 1.25f;
  const auto stream = ZfpLikeCompressor().compress(data, 1e-3);
  const auto recon = ZfpLikeCompressor::decompress(stream);
  EXPECT_EQ(recon[0], data[0]);
  EXPECT_EQ(recon[5], data[5]);
  EXPECT_NEAR(recon[7], 1.25f, 1e-3);
}

TEST(ZfpLike, NegativeValuesRoundTrip) {
  NdArray<float> data(Shape({16, 16}));
  Rng rng(8);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(rng.uniform(-50.0, -10.0));
  }
  const auto stream = ZfpLikeCompressor().compress(data, 1e-3);
  const auto recon = ZfpLikeCompressor::decompress(stream);
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
}

TEST(ZfpLike, LooserBoundGivesSmallerStream) {
  const auto data = wave_array({32, 32, 32}, 9);
  const auto loose = ZfpLikeCompressor().compress(data, 1e-1);
  const auto tight = ZfpLikeCompressor().compress(data, 1e-5);
  EXPECT_LT(loose.size(), tight.size());
}

TEST(ZfpLike, RejectsTooManyDims) {
  NdArray<float> data(Shape({2, 2, 2, 2, 2}));
  EXPECT_THROW((void)ZfpLikeCompressor().compress(data, 1e-3), Error);
}

TEST(ZfpLike, CorruptStreamThrows) {
  const auto data = wave_array({16, 16}, 3);
  auto stream = ZfpLikeCompressor().compress(data, 1e-3);
  stream.resize(stream.size() / 2);
  EXPECT_THROW((void)ZfpLikeCompressor::decompress(stream), Error);
}

TEST(ZfpLike, DeterministicOutput) {
  const auto data = wave_array({20, 24}, 10);
  EXPECT_EQ(ZfpLikeCompressor().compress(data, 1e-3),
            ZfpLikeCompressor().compress(data, 1e-3));
}

}  // namespace
}  // namespace cliz
