// Golden-stream corpus: compressed frames committed to the repository
// (tests/data/) that every future revision must keep decoding — and, since
// CliZ streams are deterministic, keep reproducing bit-for-bit on
// compression. A format or codec change that alters streams fails here
// first; if the change is intentional, regenerate the corpus by running
// this binary with CLIZ_REGEN_GOLDEN=1 and commit the new files.
//
// The synthetic inputs are rebuilt in-process from the repo PRNG using
// only IEEE add/mul arithmetic (no libm transcendentals), so the corpus
// and the checks are bit-identical across platforms and libc versions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/core/chunked.hpp"
#include "src/core/cliz.hpp"
#include "src/core/codec_context.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

constexpr double kEb = 1e-3;
constexpr float kFill = 9.96921e36f;

std::string golden_path(const char* file) {
  return std::string(CLIZ_GOLDEN_DIR) + "/" + file;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "missing golden file " << path
                  << " (regenerate the corpus with CLIZ_REGEN_GOLDEN=1)";
    return {};
  }
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << "cannot write " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// --- deterministic inputs (IEEE arithmetic only) -------------------------

/// Smooth-ish 2-D field: linear trends + a small integer texture + noise.
NdArray<float> plain_field() {
  const Shape shape({40, 48});
  NdArray<float> a(shape);
  Rng rng(1001);
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t c = 0; c < 48; ++c) {
      const double v = 0.03 * static_cast<double>(r) -
                       0.015 * static_cast<double>(c) +
                       0.25 * static_cast<double>((r + c) % 9) +
                       0.05 * rng.uniform();
      a[r * 48 + c] = static_cast<float>(v);
    }
  }
  return a;
}

struct MaskedField {
  NdArray<float> data;
  MaskMap mask;
};

/// 3-D field with a land/sea-style mask on every 13th point.
MaskedField masked_field() {
  const Shape shape({16, 12, 14});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(2002);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 13 == 0) {
      mask.mutable_data()[i] = 0;
      data[i] = kFill;
      continue;
    }
    const double v = 0.1 * static_cast<double>(i % 14) -
                     0.07 * static_cast<double>((i / 14) % 12) +
                     0.04 * rng.uniform();
    data[i] = static_cast<float>(v);
  }
  return {std::move(data), std::move(mask)};
}

/// 3-D field with an exact period-6 seasonal signal along dim 0.
NdArray<float> periodic_field() {
  const Shape shape({36, 10, 12});
  NdArray<float> a(shape);
  Rng rng(3003);
  for (std::size_t t = 0; t < 36; ++t) {
    // Parabolic bump over the 6-step season: 0, 5, 8, 9, 8, 5 (scaled).
    const double season =
        0.1 * static_cast<double>((t % 6) * (11 - (t % 6)));
    for (std::size_t p = 0; p < 120; ++p) {
      const double v = season + 0.02 * static_cast<double>(p % 12) +
                       0.03 * rng.uniform();
      a[t * 120 + p] = static_cast<float>(v);
    }
  }
  return a;
}

/// 3-D field for the chunked frame (odd extent: uneven slabs).
NdArray<float> chunked_field() {
  const Shape shape({30, 12, 10});
  NdArray<float> a(shape);
  Rng rng(4004);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double v = 0.05 * static_cast<double>(i % 120) -
                     0.002 * static_cast<double>(i / 120) +
                     0.03 * rng.uniform();
    a[i] = static_cast<float>(v);
  }
  return a;
}

PipelineConfig masked_config() {
  PipelineConfig c = PipelineConfig::defaults(3);
  c.dynamic_fitting = true;
  c.classify_bins = true;
  return c;
}

PipelineConfig periodic_config() {
  PipelineConfig c = PipelineConfig::defaults(3);
  c.period = 6;
  c.time_dim = 0;
  return c;
}

std::vector<std::uint8_t> make_chunked_stream() {
  ChunkedOptions opts;
  opts.chunks = 4;
  return chunked_compress(chunked_field(), kEb, PipelineConfig::defaults(3),
                          nullptr, opts);
}

// --- corpus maintenance (must be declared first: bootstraps a fresh
// checkout when run with CLIZ_REGEN_GOLDEN=1) ----------------------------

TEST(GoldenStreams, Regenerate) {
  if (std::getenv("CLIZ_REGEN_GOLDEN") == nullptr) {
    GTEST_SKIP() << "set CLIZ_REGEN_GOLDEN=1 to rewrite the corpus";
  }
  write_file(golden_path("golden_plain.cliz"),
             ClizCompressor(PipelineConfig::defaults(2))
                 .compress(plain_field(), kEb));
  const auto mf = masked_field();
  write_file(golden_path("golden_masked.cliz"),
             ClizCompressor(masked_config()).compress(mf.data, kEb,
                                                      &mf.mask));
  write_file(golden_path("golden_periodic.cliz"),
             ClizCompressor(periodic_config())
                 .compress(periodic_field(), kEb));
  write_file(golden_path("golden_chunked.clks"), make_chunked_stream());
}

// --- the locks ----------------------------------------------------------

TEST(GoldenStreams, PlainStreamDecodesAndReproduces) {
  const auto stream = read_file(golden_path("golden_plain.cliz"));
  ASSERT_FALSE(stream.empty());
  const auto data = plain_field();

  CodecContext ctx;
  NdArray<float> out(data.shape());
  ClizCompressor::decompress_into(stream, ctx, out);
  EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, kEb);

  EXPECT_EQ(ClizCompressor(PipelineConfig::defaults(2)).compress(data, kEb),
            stream)
      << "compressor output drifted from the committed stream";
}

TEST(GoldenStreams, MaskedStreamDecodesAndReproduces) {
  const auto stream = read_file(golden_path("golden_masked.cliz"));
  ASSERT_FALSE(stream.empty());
  const auto field = masked_field();

  const auto out = ClizCompressor::decompress(stream);
  ASSERT_EQ(out.shape(), field.data.shape());
  EXPECT_LE(
      error_stats(field.data.flat(), out.flat(), &field.mask).max_abs_error,
      kEb);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!field.mask.valid(i)) {
      ASSERT_EQ(out[i], kFill) << "masked point " << i;
    }
  }

  EXPECT_EQ(
      ClizCompressor(masked_config()).compress(field.data, kEb, &field.mask),
      stream)
      << "compressor output drifted from the committed stream";
}

TEST(GoldenStreams, PeriodicStreamDecodesAndReproduces) {
  const auto stream = read_file(golden_path("golden_periodic.cliz"));
  ASSERT_FALSE(stream.empty());
  const auto data = periodic_field();

  CodecContext ctx;
  NdArray<float> out(data.shape());
  ClizCompressor::decompress_into(stream, ctx, out);
  EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, kEb);

  EXPECT_EQ(ClizCompressor(periodic_config()).compress(data, kEb), stream)
      << "compressor output drifted from the committed stream";
}

TEST(GoldenStreams, ChunkedFrameDecodesAndReproduces) {
  const auto stream = read_file(golden_path("golden_chunked.clks"));
  ASSERT_FALSE(stream.empty());
  const auto data = chunked_field();

  ASSERT_TRUE(is_chunked_stream(stream));
  EXPECT_EQ(chunked_sample_bytes(stream), 4u);

  ChunkedScratch scratch;
  NdArray<float> out(data.shape());
  chunked_decompress_into(stream, out, &scratch);
  EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, kEb);

  EXPECT_EQ(make_chunked_stream(), stream)
      << "chunked frame drifted from the committed stream";
}

// --- thread-count invariance --------------------------------------------
// The line-parallel engine, block-split lossless backend, and chunked path
// partition work by size only, never by worker count, so every stream must
// come out byte-identical at any thread setting — and identical to the
// committed corpus above. Running the whole corpus at several counts also
// drives the std::thread backend under TSan (this binary matches the
// thread-sanitize job's test regex).

/// Restores the entry thread count on scope exit so a failing assertion
/// cannot leak a modified global setting into later tests.
struct ThreadCountGuard {
  int saved = hardware_threads();
  ~ThreadCountGuard() { set_thread_count(saved); }
};

TEST(GoldenStreams, StreamsAreThreadCountInvariant) {
  const auto data = plain_field();
  const auto mf = masked_field();
  const auto periodic = periodic_field();
  const std::vector<std::uint8_t> golden_plain =
      read_file(golden_path("golden_plain.cliz"));
  const std::vector<std::uint8_t> golden_masked =
      read_file(golden_path("golden_masked.cliz"));
  const std::vector<std::uint8_t> golden_periodic =
      read_file(golden_path("golden_periodic.cliz"));
  const std::vector<std::uint8_t> golden_chunked =
      read_file(golden_path("golden_chunked.clks"));
  ASSERT_FALSE(golden_plain.empty());

  ThreadCountGuard guard;
  const int max_threads = std::max(4, guard.saved);
  for (const int threads : {1, 2, max_threads}) {
    set_thread_count(threads);
    EXPECT_EQ(ClizCompressor(PipelineConfig::defaults(2)).compress(data, kEb),
              golden_plain)
        << "plain stream differs at " << threads << " thread(s)";
    EXPECT_EQ(
        ClizCompressor(masked_config()).compress(mf.data, kEb, &mf.mask),
        golden_masked)
        << "masked stream differs at " << threads << " thread(s)";
    EXPECT_EQ(ClizCompressor(periodic_config()).compress(periodic, kEb),
              golden_periodic)
        << "periodic stream differs at " << threads << " thread(s)";
    EXPECT_EQ(make_chunked_stream(), golden_chunked)
        << "chunked frame differs at " << threads << " thread(s)";
  }
}

/// Big enough to cross both the line-parallel grain (4096 targets per
/// pass) and the lossless block-split threshold (1 MiB of residuals would
/// need a huge field, so this locks the line-parallel path; the block
/// split has its own invariance lock in test_lossless.cpp). Round-trips
/// and compares streams across thread counts without a committed fixture.
TEST(GoldenStreams, LargeFieldThreadCountInvariant) {
  const Shape shape({48, 96, 80});
  NdArray<float> big(shape);
  Rng rng(5005);
  for (std::size_t i = 0; i < big.size(); ++i) {
    const double v = 0.02 * static_cast<double>(i % 96) -
                     0.01 * static_cast<double>((i / 96) % 80) +
                     0.05 * rng.uniform();
    big[i] = static_cast<float>(v);
  }
  PipelineConfig cfg = PipelineConfig::defaults(3);
  cfg.dynamic_fitting = true;

  ThreadCountGuard guard;
  set_thread_count(1);
  const auto serial = ClizCompressor(cfg).compress(big, kEb);
  for (const int threads : {2, std::max(4, guard.saved)}) {
    set_thread_count(threads);
    EXPECT_EQ(ClizCompressor(cfg).compress(big, kEb), serial)
        << "stream differs at " << threads << " thread(s)";
  }

  const auto out = ClizCompressor::decompress(serial);
  EXPECT_LE(error_stats(big.flat(), out.flat()).max_abs_error, kEb);
}

// --- v1 compatibility fixtures ------------------------------------------
// Frozen copies of the corpus as the checksum-less v1 code wrote it.
// Unlike the golden_* locks these are decode-only: v2 writers must keep
// *reading* v1 streams, not reproducing them.

TEST(GoldenStreams, V1PlainStreamStillDecodes) {
  const auto stream = read_file(golden_path("v1_plain.cliz"));
  ASSERT_FALSE(stream.empty());
  const auto data = plain_field();
  CodecContext ctx;
  NdArray<float> out(data.shape());
  ClizCompressor::decompress_into(stream, ctx, out);
  EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, kEb);
}

TEST(GoldenStreams, V1MaskedStreamStillDecodes) {
  const auto stream = read_file(golden_path("v1_masked.cliz"));
  ASSERT_FALSE(stream.empty());
  const auto field = masked_field();
  const auto out = ClizCompressor::decompress(stream);
  ASSERT_EQ(out.shape(), field.data.shape());
  EXPECT_LE(
      error_stats(field.data.flat(), out.flat(), &field.mask).max_abs_error,
      kEb);
}

TEST(GoldenStreams, V1PeriodicStreamStillDecodes) {
  const auto stream = read_file(golden_path("v1_periodic.cliz"));
  ASSERT_FALSE(stream.empty());
  const auto data = periodic_field();
  const auto out = ClizCompressor::decompress(stream);
  ASSERT_EQ(out.shape(), data.shape());
  EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, kEb);
}

TEST(GoldenStreams, V1ChunkedFrameStillDecodes) {
  const auto stream = read_file(golden_path("v1_chunked.clks"));
  ASSERT_FALSE(stream.empty());
  const auto data = chunked_field();
  ASSERT_TRUE(is_chunked_stream(stream));
  EXPECT_EQ(chunked_sample_bytes(stream), 4u);
  ChunkedScratch scratch;
  NdArray<float> out(data.shape());
  chunked_decompress_into(stream, out, &scratch);
  EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, kEb);
}

}  // namespace
}  // namespace cliz
