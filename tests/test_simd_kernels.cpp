// SimdKernels equivalence suite: the flat predict/quantize kernels must be
// bit-identical at every ISA tier. For randomized (shape, mask, fitting,
// bound, texture) cases the whole codec is run with the tier pinned via
// set_active_simd_tier — streams AND reconstructions must match the scalar
// tier byte for byte, for f32 and f64, masked and unmasked, dynamic and
// static fitting. Adversarial half-integer cases pin the llround emulation
// (round-half-away-from-zero on top of round-to-nearest-even); scan_codes
// is checked against a reference scan; the Lorenzo raster scan must honour
// cooperative cancellation at its poll points.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numbers>
#include <optional>
#include <vector>

#include "src/common/cpu_features.hpp"
#include "src/common/governor.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/cliz.hpp"
#include "src/core/codec_context.hpp"
#include "src/ndarray/layout.hpp"
#include "src/predictor/lorenzo_nd.hpp"
#include "src/predictor/predict_kernels.hpp"

namespace cliz {
namespace {

/// Restores the active tier on scope exit, so a failing assertion cannot
/// leak a forced tier into later tests.
struct TierGuard {
  SimdTier saved = active_simd_tier();
  TierGuard() = default;
  ~TierGuard() { set_active_simd_tier(saved); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;
};

std::vector<SimdTier> available_tiers() {
  std::vector<SimdTier> tiers;
  for (std::size_t t = 0; t <= static_cast<std::size_t>(detected_simd_tier());
       ++t) {
    tiers.push_back(static_cast<SimdTier>(t));
  }
  return tiers;
}

template <typename T>
struct KernelCase {
  Shape shape{DimVec{1}};
  NdArray<T> data{Shape{DimVec{1}}};
  std::optional<MaskMap> mask;
  PipelineConfig config = PipelineConfig::defaults(1);
  ClizOptions options;
  double eb = 1e-3;
};

/// Random case generator biased toward the interp hot path: varied shapes
/// (including length-1 and prime extents so boundary/tail lanes are hit),
/// optional blob/row masks, both fitting kinds, dynamic and static.
template <typename T>
KernelCase<T> draw_case(std::uint64_t seed) {
  Rng rng(seed);
  KernelCase<T> c;

  const std::size_t nd = 1 + rng.uniform_index(4);
  DimVec dims(nd);
  for (auto& d : dims) d = 1 + rng.uniform_index(nd >= 3 ? 17 : 61);
  c.shape = Shape(dims);
  c.data = NdArray<T>(c.shape);

  const double scale = std::pow(10.0, rng.uniform(-2.0, 3.0));
  const double noise = rng.uniform(0.0, 0.3);
  for (std::size_t i = 0; i < c.data.size(); ++i) {
    const auto coords = c.shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < nd; ++d) {
      v += std::sin(0.13 * static_cast<double>(coords[d]) +
                    static_cast<double>(d));
    }
    c.data[i] = static_cast<T>(scale * (v + noise * rng.normal()));
  }

  const auto mask_kind = rng.uniform_index(3);
  if (mask_kind > 0) {
    c.mask = MaskMap::all_valid(c.shape);
    const double invalid_frac = rng.uniform(0.05, 0.6);
    for (std::size_t i = 0; i < c.data.size(); ++i) {
      const bool invalid =
          mask_kind == 1
              ? rng.uniform() < invalid_frac
              : (i / std::max<std::size_t>(1, c.shape.dims().back())) % 3 == 0;
      if (invalid) {
        c.mask->mutable_data()[i] = 0;
        c.data[i] = static_cast<T>(9.96921e36);
      }
    }
  }

  c.config = PipelineConfig::defaults(nd);
  const auto perms = all_permutations(nd);
  const auto fusions = all_fusions(nd);
  c.config.permutation = perms[rng.uniform_index(perms.size())];
  c.config.fusion = fusions[rng.uniform_index(fusions.size())];
  c.config.fitting =
      rng.uniform() < 0.5 ? FittingKind::kLinear : FittingKind::kCubic;
  c.config.dynamic_fitting = rng.uniform() < 0.7;
  c.config.classify_bins = rng.uniform() < 0.3;
  c.eb = scale * std::pow(10.0, rng.uniform(-5.0, -1.0));
  return c;
}

/// Compresses and decompresses `c` with the tier pinned; returns the stream
/// and reconstruction bits.
template <typename T>
void run_at_tier(const KernelCase<T>& c, SimdTier tier,
                 std::vector<std::uint8_t>& stream, NdArray<T>& recon) {
  TierGuard guard;
  set_active_simd_tier(tier);
  const MaskMap* mask = c.mask.has_value() ? &*c.mask : nullptr;
  const ClizCompressor codec(c.config, c.options);
  stream = codec.compress(c.data, c.eb, mask);
  if constexpr (sizeof(T) == 8) {
    recon = ClizCompressor::decompress_f64(stream);
  } else {
    recon = ClizCompressor::decompress(stream);
  }
}

template <typename T>
void expect_tier_equivalence(std::uint64_t seed) {
  const KernelCase<T> c = draw_case<T>(seed);
  std::vector<std::uint8_t> ref_stream;
  NdArray<T> ref_recon{Shape{DimVec{1}}};
  run_at_tier(c, SimdTier::kScalar, ref_stream, ref_recon);
  for (const SimdTier tier : available_tiers()) {
    if (tier == SimdTier::kScalar) continue;
    std::vector<std::uint8_t> stream;
    NdArray<T> recon{Shape{DimVec{1}}};
    run_at_tier(c, tier, stream, recon);
    ASSERT_EQ(stream, ref_stream)
        << "seed " << seed << " tier " << simd_tier_name(tier) << " config "
        << c.config.label();
    ASSERT_EQ(recon.size(), ref_recon.size()) << "seed " << seed;
    ASSERT_EQ(std::memcmp(recon.data(), ref_recon.data(),
                          recon.size() * sizeof(T)),
              0)
        << "seed " << seed << " tier " << simd_tier_name(tier);
  }
}

class SimdKernelsEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimdKernelsEquivalence, StreamsAndReconsMatchScalarF32) {
  for (std::uint64_t i = 0; i < 12; ++i) {
    expect_tier_equivalence<float>(GetParam() * 1000 + i);
  }
}

TEST_P(SimdKernelsEquivalence, StreamsAndReconsMatchScalarF64) {
  for (std::uint64_t i = 0; i < 8; ++i) {
    expect_tier_equivalence<double>(40000 + GetParam() * 1000 + i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdKernelsEquivalence,
                         ::testing::Values(1, 2, 3, 4));

// Half-integer adversarial cases: with eb an exact power of two and data on
// the eb grid, (value - pred) / (2 * eb) lands on exact half-integers, the
// one input class where round-to-nearest-even and llround's
// half-away-from-zero disagree. The SIMD fixup must reproduce llround for
// positive AND negative halves (the naive |fix| variant breaks at +3.5).
TEST(SimdKernelsHalfInteger, RoundingMatchesScalarOnHalfIntegerGrid) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(9100 + seed);
    KernelCase<float> c;
    c.shape = Shape(DimVec{37, 41});
    c.data = NdArray<float>(c.shape);
    c.eb = std::ldexp(1.0, -static_cast<int>(rng.uniform_index(6)) - 2);
    for (std::size_t i = 0; i < c.data.size(); ++i) {
      // Values at integer AND half-integer multiples of 2*eb, both signs.
      const int n = static_cast<int>(rng.uniform_index(31)) - 15;
      c.data[i] = static_cast<float>(static_cast<double>(n) * c.eb);
    }
    c.config = PipelineConfig::defaults(2);
    c.config.dynamic_fitting = false;
    c.config.fitting = seed % 2 == 0 ? FittingKind::kCubic
                                     : FittingKind::kLinear;

    std::vector<std::uint8_t> ref_stream;
    NdArray<float> ref_recon{Shape{DimVec{1}}};
    run_at_tier(c, SimdTier::kScalar, ref_stream, ref_recon);
    for (const SimdTier tier : available_tiers()) {
      std::vector<std::uint8_t> stream;
      NdArray<float> recon{Shape{DimVec{1}}};
      run_at_tier(c, tier, stream, recon);
      ASSERT_EQ(stream, ref_stream)
          << "seed " << seed << " tier " << simd_tier_name(tier);
      ASSERT_EQ(std::memcmp(recon.data(), ref_recon.data(),
                            recon.size() * sizeof(float)),
                0)
          << "seed " << seed << " tier " << simd_tier_name(tier);
    }
  }
}

// scan_codes must agree with a reference scan at every tier, for every
// alignment/tail length.
TEST(SimdKernelsScanCodes, MatchesReferenceAtEveryTier) {
  Rng rng(4242);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{7}, std::size_t{8}, std::size_t{13},
                        std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::uint32_t> codes(n);
    for (auto& v : codes) {
      const auto kind = rng.uniform_index(4);
      v = kind == 0 ? 0u
                    : static_cast<std::uint32_t>(
                          rng.uniform_index(kind == 1 ? 7u : 0xFFFFFFu));
    }
    CodeScan ref;
    for (const std::uint32_t v : codes) {
      if (v == 0) ++ref.zeros;
      if (v > ref.max_code) ref.max_code = v;
    }
    for (const SimdTier tier : available_tiers()) {
      const CodeScan got = scan_codes_for(tier, codes.data(), codes.size());
      EXPECT_EQ(got.zeros, ref.zeros)
          << "n=" << n << " tier " << simd_tier_name(tier);
      EXPECT_EQ(got.max_code, ref.max_code)
          << "n=" << n << " tier " << simd_tier_name(tier);
    }
  }
}

// The Lorenzo raster scan polls the cancellation token at row granularity;
// an already-cancelled token must abort the scan with kCancelled instead of
// running the whole chunk.
TEST(SimdKernelsLorenzo, EncodeAndDecodeHonourCancellation) {
  const Shape shape(DimVec{64, 512});
  NdArray<float> data(shape);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i % 97);
  }
  const LinearQuantizer<float> q(1e-3, 1u << 15);
  CancelToken cancel;
  cancel.cancel();

  std::vector<std::uint64_t> offsets;
  std::vector<std::uint32_t> codes;
  std::vector<float> outliers;
  std::vector<LorenzoTerm> stencil;
  try {
    lorenzo_encode(data.data(), shape, 1u, q, nullptr, offsets, codes,
                   outliers, stencil, &cancel);
    FAIL() << "cancelled lorenzo_encode did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }

  std::vector<std::uint64_t> off_scratch;
  std::vector<std::uint32_t> code_scratch;
  std::size_t cursor = 0;
  const auto fetch = [](const std::uint64_t*, std::uint32_t* out,
                        std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 1u << 15;
  };
  try {
    lorenzo_decode(data.data(), shape, 1u, q,
                   std::span<const float>{}, cursor, nullptr, off_scratch,
                   code_scratch, stencil, fetch, &cancel);
    FAIL() << "cancelled lorenzo_decode did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
}

// set_active_simd_tier must clamp to the detected tier so forcing e.g.
// avx2 on a non-AVX2 host can never select illegal instructions.
TEST(SimdKernelsDispatch, ActiveTierClampsToDetected) {
  TierGuard guard;
  set_active_simd_tier(SimdTier::kAvx2);
  EXPECT_LE(static_cast<int>(active_simd_tier()),
            static_cast<int>(detected_simd_tier()));
  set_active_simd_tier(SimdTier::kScalar);
  EXPECT_EQ(active_simd_tier(), SimdTier::kScalar);
}

}  // namespace
}  // namespace cliz
