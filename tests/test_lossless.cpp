#include "src/lossless/lossless.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"

namespace cliz {
namespace {

void expect_roundtrip(const std::vector<std::uint8_t>& input) {
  const auto compressed = lossless_compress(input);
  const auto output = lossless_decompress(compressed);
  ASSERT_EQ(output.size(), input.size());
  EXPECT_EQ(output, input);
}

TEST(Lossless, EmptyInput) { expect_roundtrip({}); }

TEST(Lossless, TinyInputs) {
  expect_roundtrip({0x42});
  expect_roundtrip({1, 2, 3});
  expect_roundtrip({0, 0, 0, 0});
}

TEST(Lossless, AllZeros) {
  expect_roundtrip(std::vector<std::uint8_t>(100000, 0));
}

TEST(Lossless, AllZerosCompressWell) {
  const std::vector<std::uint8_t> input(100000, 0);
  const auto compressed = lossless_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 100);
}

TEST(Lossless, RepeatingPatternCompresses) {
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 5000; ++i) {
    const char* chunk = "climate-data-chunk-";
    input.insert(input.end(), chunk, chunk + std::strlen(chunk));
  }
  const auto compressed = lossless_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 10);
  expect_roundtrip(input);
}

TEST(Lossless, RandomBytesStoredNotInflated) {
  Rng rng(3);
  std::vector<std::uint8_t> input(65536);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto compressed = lossless_compress(input);
  // Stored fallback: tiny header only.
  EXPECT_LE(compressed.size(), input.size() + 16);
  expect_roundtrip(input);
}

TEST(Lossless, TextLikeDataRoundTrip) {
  Rng rng(4);
  std::vector<std::uint8_t> input;
  const std::string words[] = {"temperature", "salinity", "pressure",
                               "humidity", " ", "\n"};
  for (int i = 0; i < 20000; ++i) {
    const auto& w = words[rng.uniform_index(6)];
    input.insert(input.end(), w.begin(), w.end());
  }
  const auto compressed = lossless_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 2);
  expect_roundtrip(input);
}

TEST(Lossless, LongMatchesBeyondMaxMatchLength) {
  // A run longer than the coder's max match must split correctly.
  std::vector<std::uint8_t> input(1 << 16, 0xAA);
  expect_roundtrip(input);
}

TEST(Lossless, MatchesAcrossWindowBoundary) {
  // Pattern repeats at distance > 64 KiB: the window-limited matcher must
  // still round-trip (just with fresh literals).
  std::vector<std::uint8_t> block(70000);
  Rng rng(5);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.uniform_index(4));
  std::vector<std::uint8_t> input = block;
  input.insert(input.end(), block.begin(), block.end());
  expect_roundtrip(input);
}

class LosslessSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LosslessSizeSweep, MixedContentRoundTrip) {
  Rng rng(100 + GetParam());
  std::vector<std::uint8_t> input(GetParam());
  for (std::size_t i = 0; i < input.size(); ++i) {
    // Mix of runs and noise.
    input[i] = (i / 64) % 3 == 0
                   ? 0x55
                   : static_cast<std::uint8_t>(rng.uniform_index(16));
  }
  expect_roundtrip(input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LosslessSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 63, 64, 65,
                                           255, 256, 257, 4095, 4096, 65535,
                                           65536, 65537, 200000));

TEST(Lossless, CorruptModeByteThrows) {
  std::vector<std::uint8_t> bad{9, 4, 1, 2, 3, 4};
  EXPECT_THROW(lossless_decompress(bad), Error);
}

TEST(Lossless, TruncatedStreamThrows) {
  const std::vector<std::uint8_t> input(1000, 7);
  auto compressed = lossless_compress(input);
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(lossless_decompress(compressed), Error);
}

TEST(Lossless, EmptyStreamThrows) {
  EXPECT_THROW(lossless_decompress({}), Error);
}

// --- block-split container (mode 4) -------------------------------------
// Inputs of 1 MiB and up are cut into fixed 256 KiB blocks compressed
// independently (and in parallel); the partition is purely size-based, so
// the container must be byte-identical at every thread count.

std::vector<std::uint8_t> block_split_input(std::size_t n) {
  Rng rng(42);
  std::vector<std::uint8_t> input(n);
  for (std::size_t i = 0; i < n; ++i) {
    input[i] = (i / 96) % 3 == 0
                   ? 0x33
                   : static_cast<std::uint8_t>(rng.uniform_index(24));
  }
  return input;
}

TEST(Lossless, BlockSplitRoundTrip) {
  // 1 MiB + change: crosses the split threshold with an uneven tail block.
  const auto input = block_split_input((1u << 20) + 12345);
  const auto compressed = lossless_compress(input);
  ASSERT_FALSE(compressed.empty());
  EXPECT_EQ(compressed[0], 4) << "expected the block-split container";
  EXPECT_LT(compressed.size(), input.size());
  EXPECT_EQ(lossless_decompress(compressed), input);
}

TEST(Lossless, BlockSplitExactMultipleRoundTrip) {
  const auto input = block_split_input(1u << 20);
  const auto compressed = lossless_compress(input);
  ASSERT_FALSE(compressed.empty());
  EXPECT_EQ(compressed[0], 4);
  EXPECT_EQ(lossless_decompress(compressed), input);
}

TEST(Lossless, BlockSplitThreadCountInvariant) {
  const auto input = block_split_input((1u << 20) + 777);
  const int saved = hardware_threads();
  set_thread_count(1);
  const auto serial = lossless_compress(input);
  set_thread_count(4);
  const auto parallel = lossless_compress(input);
  set_thread_count(saved);
  EXPECT_EQ(parallel, serial);
  EXPECT_EQ(lossless_decompress(parallel), input);
}

TEST(Lossless, BlockSplitCorruptBlockThrows) {
  const auto input = block_split_input(1u << 20);
  auto compressed = lossless_compress(input);
  ASSERT_EQ(compressed[0], 4);
  // Flip a byte deep inside a block payload: either the inner frame's CRC
  // or the outer whole-payload CRC must reject it.
  compressed[compressed.size() / 2] ^= 0xFF;
  EXPECT_THROW(lossless_decompress(compressed), Error);
}

TEST(Lossless, BlockSplitTruncatedThrows) {
  const auto input = block_split_input(1u << 20);
  auto compressed = lossless_compress(input);
  ASSERT_EQ(compressed[0], 4);
  compressed.resize(compressed.size() - compressed.size() / 4);
  EXPECT_THROW(lossless_decompress(compressed), Error);
}

TEST(Lossless, BlockSplitScratchReuseMatches) {
  const auto input = block_split_input((1u << 20) + 4096);
  const auto reference = lossless_compress(input);
  LosslessScratch scratch;
  std::vector<std::uint8_t> out;
  lossless_compress_into(input, scratch, out);
  EXPECT_EQ(out, reference);
  // Second call through the same scratch (steady state) must not drift.
  lossless_compress_into(input, scratch, out);
  EXPECT_EQ(out, reference);
  std::vector<std::uint8_t> round;
  lossless_decompress_into(out, scratch, round);
  EXPECT_EQ(round, input);
}

TEST(Lossless, FloatPayloadRoundTrip) {
  // The real use: serialized quantization streams.
  Rng rng(6);
  std::vector<float> values(20000);
  for (auto& v : values) {
    v = static_cast<float>(rng.normal() * 0.01 + 280.0);
  }
  std::vector<std::uint8_t> input(values.size() * sizeof(float));
  std::memcpy(input.data(), values.data(), input.size());
  expect_roundtrip(input);
}

}  // namespace
}  // namespace cliz
