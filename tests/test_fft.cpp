#include "src/fft/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/fft/period.hpp"

namespace cliz {
namespace {

using Complex = std::complex<double>;

std::vector<Complex> naive_dft(std::span<const Complex> x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * std::numbers::pi *
                         static_cast<double>(k * j) / static_cast<double>(n);
      acc += x[j] * Complex{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
  return out;
}

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return x;
}

class DftMatchesNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DftMatchesNaive, Forward) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 100 + n);
  const auto fast = dft(x);
  const auto slow = naive_dft(x, false);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), slow[k].real(), 1e-8 * static_cast<double>(n));
    EXPECT_NEAR(fast[k].imag(), slow[k].imag(), 1e-8 * static_cast<double>(n));
  }
}

TEST_P(DftMatchesNaive, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 200 + n);
  auto X = dft(x);
  const auto back = dft(X, /*inverse=*/true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real() / static_cast<double>(n), x[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag() / static_cast<double>(n), x[i].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, DftMatchesNaive,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17,
                                           31, 32, 60, 100, 128, 129, 255));

TEST(Fft, RejectsNonPowerOfTwoInPlace) {
  std::vector<Complex> a(3);
  EXPECT_THROW(fft_pow2_inplace(a, false), Error);
}

TEST(Fft, MagnitudeSpectrumPeaksAtSinusoidFrequency) {
  const std::size_t n = 240;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * 20.0 * static_cast<double>(i) /
                    static_cast<double>(n));
  }
  const auto mag = magnitude_spectrum(x);
  std::size_t argmax = 1;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    if (mag[k] > mag[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, 20u);
}

TEST(Period, DetectsAnnualCycleInSshLikeRows) {
  // Paper Fig. 8: 1032 monthly samples, annual period 12 -> DFT bin 86.
  const std::size_t n = 1032;
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  for (int r = 0; r < 10; ++r) {
    std::vector<double> row(n);
    const double amp = rng.uniform(0.5, 2.0);
    const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    for (std::size_t t = 0; t < n; ++t) {
      row[t] = amp * std::cos(2.0 * std::numbers::pi *
                                  static_cast<double>(t) / 12.0 +
                              phase) +
               0.05 * rng.normal();
    }
    rows.push_back(std::move(row));
  }
  const auto est = detect_period(rows);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->frequency, 86u);
  EXPECT_EQ(est->period, 12u);
}

TEST(Period, PicksBasePeriodNotHarmonic) {
  // Signal with energy at the base frequency AND its second harmonic; the
  // smallest near-peak frequency (largest period) must win.
  const std::size_t n = 480;
  std::vector<double> row(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double ang =
        2.0 * std::numbers::pi * static_cast<double>(t) / 24.0;
    row[t] = std::cos(ang) + 0.9 * std::cos(2.0 * ang);
  }
  const std::vector<std::vector<double>> rows{row};
  const auto est = detect_period(rows);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->period, 24u);
}

TEST(Period, WhiteNoiseIsNotPeriodic) {
  Rng rng(13);
  std::vector<std::vector<double>> rows;
  for (int r = 0; r < 10; ++r) {
    std::vector<double> row(512);
    for (auto& v : row) v = rng.normal();
    rows.push_back(std::move(row));
  }
  EXPECT_FALSE(detect_period(rows).has_value());
}

TEST(Period, LinearTrendIsNotPeriodic) {
  std::vector<double> row(300);
  for (std::size_t t = 0; t < row.size(); ++t) {
    row[t] = 0.01 * static_cast<double>(t);
  }
  const std::vector<std::vector<double>> rows{row};
  EXPECT_FALSE(detect_period(rows).has_value());
}

TEST(Period, MismatchedRowLengthsThrow) {
  std::vector<std::vector<double>> rows{std::vector<double>(16),
                                        std::vector<double>(17)};
  EXPECT_THROW(detect_period(rows), Error);
}

TEST(Period, ShortRowsThrow) {
  std::vector<std::vector<double>> rows{std::vector<double>(3)};
  EXPECT_THROW(detect_period(rows), Error);
}

}  // namespace
}  // namespace cliz
