#include "src/core/chunked.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/climate/datasets.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

NdArray<float> smooth_array(const DimVec& dims, std::uint64_t seed) {
  const Shape shape(dims);
  NdArray<float> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += std::sin(0.09 * static_cast<double>(c[d]));
    }
    a[i] = static_cast<float>(v + 0.01 * rng.normal());
  }
  return a;
}

class ChunkCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkCountSweep, RoundTripWithinBound) {
  const auto data = smooth_array({30, 16, 18}, 3);
  ChunkedOptions opts;
  opts.chunks = GetParam();
  const auto stream = chunked_compress(data, 1e-3,
                                       PipelineConfig::defaults(3), nullptr,
                                       opts);
  const auto recon = chunked_decompress(stream);
  ASSERT_EQ(recon.shape(), data.shape());
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Counts, ChunkCountSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 30,
                                           100 /* > extent: clamped */));

TEST(Chunked, DefaultChunkCountWorks) {
  const auto data = smooth_array({24, 12, 12}, 4);
  const auto stream =
      chunked_compress(data, 1e-3, PipelineConfig::defaults(3));
  const auto recon = chunked_decompress(stream);
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
}

TEST(Chunked, MaskedPeriodicFieldRoundTrip) {
  const auto field = make_ssh(0.1, 900);
  PipelineConfig config = PipelineConfig::defaults(3);
  config.period = 12;
  ChunkedOptions opts;
  opts.chunks = 3;
  const double eb = 1e-3;
  const auto stream =
      chunked_compress(field.data, eb, config, field.mask_ptr(), opts);
  const auto recon = chunked_decompress(stream);
  const auto stats =
      error_stats(field.data.flat(), recon.flat(), field.mask_ptr());
  EXPECT_LE(stats.max_abs_error, eb);
  for (std::size_t i = 0; i < recon.size(); ++i) {
    if (!field.mask->valid(i)) {
      ASSERT_EQ(recon[i], 9.96921e36f);
    }
  }
}

TEST(Chunked, PeriodicityDisabledInShortChunks) {
  // 48 time steps in 12 chunks -> 4 steps per chunk < 2*12: the per-chunk
  // codec must silently drop periodic extraction yet stay bounded.
  const auto field = make_ssh(0.1, 901);
  PipelineConfig config = PipelineConfig::defaults(3);
  config.period = 12;
  ChunkedOptions opts;
  opts.chunks = 12;
  const auto stream =
      chunked_compress(field.data, 1e-3, config, field.mask_ptr(), opts);
  const auto recon = chunked_decompress(stream);
  EXPECT_LE(
      error_stats(field.data.flat(), recon.flat(), field.mask_ptr())
          .max_abs_error,
      1e-3);
}

TEST(Chunked, EquivalentQualityToMonolithic) {
  const auto data = smooth_array({32, 14, 14}, 5);
  ChunkedOptions opts;
  opts.chunks = 4;
  const auto chunked = chunked_compress(data, 1e-3,
                                        PipelineConfig::defaults(3), nullptr,
                                        opts);
  const auto mono =
      ClizCompressor(PipelineConfig::defaults(3)).compress(data, 1e-3);
  // Chunking costs some ratio (4 headers, shorter prediction context) but
  // must stay in the same ballpark.
  EXPECT_LT(chunked.size(), mono.size() * 2);
}

TEST(Chunked, CorruptStreamsThrow) {
  const auto data = smooth_array({16, 8, 8}, 6);
  auto stream =
      chunked_compress(data, 1e-3, PipelineConfig::defaults(3));
  auto truncated = stream;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)chunked_decompress(truncated), Error);
  EXPECT_THROW((void)chunked_decompress({}), Error);
  auto mutated = stream;
  mutated[1] ^= 0xFF;  // header magic
  EXPECT_THROW((void)chunked_decompress(mutated), Error);
}

TEST(Chunked, MismatchedMaskShapeThrows) {
  const auto data = smooth_array({8, 8}, 7);
  const auto mask = MaskMap::all_valid(Shape({8, 9}));
  EXPECT_THROW((void)chunked_compress(data, 1e-3,
                                      PipelineConfig::defaults(2), &mask),
               Error);
}

}  // namespace
}  // namespace cliz
