#include "src/core/chunked.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <type_traits>

#include "src/climate/datasets.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

template <typename T>
NdArray<T> smooth_array_t(const DimVec& dims, std::uint64_t seed) {
  const Shape shape(dims);
  NdArray<T> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += std::sin(0.09 * static_cast<double>(c[d]));
    }
    a[i] = static_cast<T>(v + 0.01 * rng.normal());
  }
  return a;
}

NdArray<float> smooth_array(const DimVec& dims, std::uint64_t seed) {
  return smooth_array_t<float>(dims, seed);
}

class ChunkCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkCountSweep, RoundTripWithinBound) {
  const auto data = smooth_array({30, 16, 18}, 3);
  ChunkedOptions opts;
  opts.chunks = GetParam();
  const auto stream = chunked_compress(data, 1e-3,
                                       PipelineConfig::defaults(3), nullptr,
                                       opts);
  const auto recon = chunked_decompress(stream);
  ASSERT_EQ(recon.shape(), data.shape());
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Counts, ChunkCountSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 30,
                                           100 /* > extent: clamped */));

// --- shape / chunk-count / sample-type sweep ----------------------------

struct SweepCase {
  DimVec dims;
  std::size_t chunks;
  bool f64;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name;
  for (const std::size_t d : info.param.dims) {
    name += std::to_string(d) + "x";
  }
  name.back() = '_';
  name += std::to_string(info.param.chunks) + "chunks_";
  name += info.param.f64 ? "f64" : "f32";
  return name;
}

/// Every public chunked entry point on one input: compress, decompress,
/// decompress_into, and a reused scratch — with byte-identity between the
/// scratch-free and scratch-reusing paths.
template <typename T>
void sweep_round_trip(const DimVec& dims, std::size_t chunks) {
  const auto data = smooth_array_t<T>(dims, 8 + dims.size());
  const double eb = 1e-3;
  const auto config = PipelineConfig::defaults(dims.size());

  ChunkedOptions opts;
  opts.chunks = chunks;
  const auto stream = chunked_compress(data, eb, config, nullptr, opts);

  ChunkedScratch scratch;
  ChunkedOptions pooled = opts;
  pooled.scratch = &scratch;
  std::vector<std::uint8_t> pooled_stream;
  for (int round = 0; round < 2; ++round) {
    chunked_compress_into(data, eb, config, nullptr, pooled, pooled_stream);
    ASSERT_EQ(pooled_stream, stream) << "round " << round;
  }

  const auto recon = [&] {
    if constexpr (std::is_same_v<T, double>) {
      return chunked_decompress_f64(stream, &scratch);
    } else {
      return chunked_decompress(stream, &scratch);
    }
  }();
  ASSERT_EQ(recon.shape(), data.shape());
  double max_err = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    max_err = std::max(max_err, std::abs(static_cast<double>(data[i]) -
                                         static_cast<double>(recon[i])));
  }
  EXPECT_LE(max_err, eb);

  NdArray<T> out(data.shape());
  chunked_decompress_into(stream, out, &scratch);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], recon[i]) << "into/returning divergence at " << i;
  }
}

class ChunkedSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ChunkedSweep, RoundTripAllPaths) {
  const SweepCase& c = GetParam();
  if (c.f64) {
    sweep_round_trip<double>(c.dims, c.chunks);
  } else {
    sweep_round_trip<float>(c.dims, c.chunks);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndTypes, ChunkedSweep,
    ::testing::Values(
        // 1-D: even and odd splits, both sample types.
        SweepCase{{64}, 1, false}, SweepCase{{64}, 5, false},
        SweepCase{{63}, 4, true},
        // 2-D: odd remainders (41 rows / 7 chunks leaves ragged slabs).
        SweepCase{{40, 12}, 3, false}, SweepCase{{41, 11}, 7, true},
        // 3-D: even split, ragged split, and per-row chunks.
        SweepCase{{24, 10, 8}, 4, false}, SweepCase{{25, 9, 7}, 6, true},
        SweepCase{{13, 6, 5}, 13, false},
        // 4-D ragged.
        SweepCase{{10, 5, 4, 3}, 3, false}),
    sweep_name);

TEST(Chunked, DefaultChunkCountWorks) {
  const auto data = smooth_array({24, 12, 12}, 4);
  const auto stream =
      chunked_compress(data, 1e-3, PipelineConfig::defaults(3));
  const auto recon = chunked_decompress(stream);
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
}

TEST(Chunked, MaskedPeriodicFieldRoundTrip) {
  const auto field = make_ssh(0.1, 900);
  PipelineConfig config = PipelineConfig::defaults(3);
  config.period = 12;
  ChunkedOptions opts;
  opts.chunks = 3;
  const double eb = 1e-3;
  const auto stream =
      chunked_compress(field.data, eb, config, field.mask_ptr(), opts);
  const auto recon = chunked_decompress(stream);
  const auto stats =
      error_stats(field.data.flat(), recon.flat(), field.mask_ptr());
  EXPECT_LE(stats.max_abs_error, eb);
  for (std::size_t i = 0; i < recon.size(); ++i) {
    if (!field.mask->valid(i)) {
      ASSERT_EQ(recon[i], 9.96921e36f);
    }
  }
}

TEST(Chunked, PeriodicityDisabledInShortChunks) {
  // 48 time steps in 12 chunks -> 4 steps per chunk < 2*12: the per-chunk
  // codec must silently drop periodic extraction yet stay bounded.
  const auto field = make_ssh(0.1, 901);
  PipelineConfig config = PipelineConfig::defaults(3);
  config.period = 12;
  ChunkedOptions opts;
  opts.chunks = 12;
  const auto stream =
      chunked_compress(field.data, 1e-3, config, field.mask_ptr(), opts);
  const auto recon = chunked_decompress(stream);
  EXPECT_LE(
      error_stats(field.data.flat(), recon.flat(), field.mask_ptr())
          .max_abs_error,
      1e-3);
}

TEST(Chunked, EquivalentQualityToMonolithic) {
  const auto data = smooth_array({32, 14, 14}, 5);
  ChunkedOptions opts;
  opts.chunks = 4;
  const auto chunked = chunked_compress(data, 1e-3,
                                        PipelineConfig::defaults(3), nullptr,
                                        opts);
  const auto mono =
      ClizCompressor(PipelineConfig::defaults(3)).compress(data, 1e-3);
  // Chunking costs some ratio (4 headers, shorter prediction context) but
  // must stay in the same ballpark.
  EXPECT_LT(chunked.size(), mono.size() * 2);
}

TEST(Chunked, CorruptStreamsThrow) {
  const auto data = smooth_array({16, 8, 8}, 6);
  auto stream =
      chunked_compress(data, 1e-3, PipelineConfig::defaults(3));
  auto truncated = stream;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)chunked_decompress(truncated), Error);
  EXPECT_THROW((void)chunked_decompress({}), Error);
  auto mutated = stream;
  mutated[1] ^= 0xFF;  // header magic
  EXPECT_THROW((void)chunked_decompress(mutated), Error);
}

TEST(Chunked, MismatchedMaskShapeThrows) {
  const auto data = smooth_array({8, 8}, 7);
  const auto mask = MaskMap::all_valid(Shape({8, 9}));
  EXPECT_THROW((void)chunked_compress(data, 1e-3,
                                      PipelineConfig::defaults(2), &mask),
               Error);
}

}  // namespace
}  // namespace cliz
