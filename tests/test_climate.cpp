#include "src/climate/datasets.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/status.hpp"
#include "src/core/autotune.hpp"
#include "src/fft/period.hpp"

namespace cliz {
namespace {

TEST(Climate, RegistryCoversTableThree) {
  const auto names = dataset_names();
  ASSERT_EQ(names.size(), 9u);
  for (const auto& name : names) {
    const auto field = make_dataset(name, 0.08);
    EXPECT_EQ(field.name, name);
    EXPECT_GT(field.data.size(), 0u);
  }
  EXPECT_THROW((void)make_dataset("nonexistent"), Error);
}

TEST(Climate, DeterministicGeneration) {
  const auto a = make_ssh(0.1, 77);
  const auto b = make_ssh(0.1, 77);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_EQ(a.data[i], b.data[i]);
  }
}

TEST(Climate, DifferentSeedsDiffer) {
  const auto a = make_ssh(0.1, 1);
  const auto b = make_ssh(0.1, 2);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    diffs += a.data[i] != b.data[i] ? 1 : 0;
  }
  EXPECT_GT(diffs, a.data.size() / 4);
}

TEST(Climate, SshHasOceanMaskWithFillValues) {
  const auto field = make_ssh(0.1, 3);
  ASSERT_TRUE(field.mask.has_value());
  const double valid_frac =
      static_cast<double>(field.mask->count_valid()) /
      static_cast<double>(field.data.size());
  EXPECT_GT(valid_frac, 0.3);
  EXPECT_LT(valid_frac, 0.95);
  for (std::size_t i = 0; i < field.data.size(); ++i) {
    if (!field.mask->valid(i)) {
      ASSERT_EQ(field.data[i], kFillValue);
    } else {
      ASSERT_LT(std::abs(field.data[i]), 1e6f);
    }
  }
}

TEST(Climate, SoilliqIsMostlyMasked) {
  // Paper: ~70% of the surface is water, invalid for the land model.
  const auto field = make_soilliq(0.3, 4);
  ASSERT_TRUE(field.mask.has_value());
  const double valid_frac =
      static_cast<double>(field.mask->count_valid()) /
      static_cast<double>(field.data.size());
  EXPECT_LT(valid_frac, 0.5);
  EXPECT_EQ(field.data.shape().ndims(), 4u);
}

TEST(Climate, TsfcOnlyPolarCapsValid) {
  const auto field = make_tsfc(0.15, 5);
  ASSERT_TRUE(field.mask.has_value());
  const Shape& shape = field.data.shape();
  const std::size_t n_lat = shape.dim(1);
  // Equatorial band must be fully invalid.
  std::size_t equator_valid = 0;
  for (std::size_t lo = 0; lo < shape.dim(2); ++lo) {
    const DimVec c{0, n_lat / 2, lo};
    equator_valid += field.mask->valid(shape.offset(c)) ? 1 : 0;
  }
  EXPECT_EQ(equator_valid, 0u);
  EXPECT_GT(field.mask->count_valid(), 0u);
}

TEST(Climate, PeriodicFieldsCarryDetectableAnnualCycle) {
  for (const auto& name : {"SSH", "Tsfc"}) {
    const auto field = make_dataset(name, 0.12);
    ASSERT_TRUE(field.has_period) << name;
    const auto rows = sample_time_rows(field.data, field.mask_ptr(),
                                       field.time_dim, 10, 42);
    ASSERT_GE(rows.size(), 3u) << name;
    const auto est = detect_period(rows);
    ASSERT_TRUE(est.has_value()) << name;
    EXPECT_EQ(est->period, 12u) << name;
  }
}

TEST(Climate, NonPeriodicFieldsShowNoCycle) {
  const auto field = make_cesm_t(0.04, 7);
  EXPECT_FALSE(field.has_period);
  // Treat the height dim as "time" and probe: no annual cycle.
  const auto rows = sample_time_rows(field.data, nullptr, 0, 10, 42);
  const auto est = detect_period(rows);
  EXPECT_FALSE(est.has_value());
}

TEST(Climate, CesmTemperatureRoughAlongHeightSmoothAlongLatLon) {
  // Paper Fig. 4 / Section V-B: mean |step| along height is orders of
  // magnitude above the lat/lon steps.
  const auto field = make_cesm_t(0.06, 8);
  const Shape& shape = field.data.shape();
  double step[3] = {0.0, 0.0, 0.0};
  std::size_t count[3] = {0, 0, 0};
  for (std::size_t d = 0; d < 3; ++d) {
    for (std::size_t i = 0; i < field.data.size(); ++i) {
      const auto c = shape.coords(i);
      if (c[d] + 1 >= shape.dim(d)) continue;
      auto c2 = c;
      ++c2[d];
      step[d] += std::abs(static_cast<double>(field.data[shape.offset(c2)]) -
                          static_cast<double>(field.data[i]));
      ++count[d];
    }
  }
  for (int d = 0; d < 3; ++d) step[d] /= static_cast<double>(count[d]);
  EXPECT_GT(step[0], 10.0 * step[1]);
  EXPECT_GT(step[0], 10.0 * step[2]);
}

TEST(Climate, RelhumStaysInPhysicalRange) {
  const auto field = make_relhum(0.04, 9);
  for (std::size_t i = 0; i < field.data.size(); ++i) {
    ASSERT_GE(field.data[i], 0.0f);
    ASSERT_LE(field.data[i], 100.0f);
  }
}

TEST(Climate, HurricaneHasWarmCoreVortex) {
  const auto field = make_hurricane_t(0.2, 10);
  EXPECT_FALSE(field.mask.has_value());
  const Shape& shape = field.data.shape();
  // Mid-level slice: centre warmer than the domain edge.
  const std::size_t h = shape.dim(0) / 3;
  const float centre =
      field.data[shape.offset(DimVec{h, shape.dim(1) / 2, shape.dim(2) / 2})];
  const float corner = field.data[shape.offset(DimVec{h, 2, 2})];
  EXPECT_GT(centre, corner + 2.0f);
}

TEST(Climate, ScaleControlsSize) {
  const auto small = make_cesm_t(0.04, 11);
  const auto large = make_cesm_t(0.08, 11);
  EXPECT_LT(small.data.size(), large.data.size());
}

TEST(Climate, OceanModelFieldsShareOneMask) {
  // SALT/RHO/SHF_QSW belong to the same ocean model as SSH (paper IV):
  // they must share the land mask at matching scale so one tuned pipeline
  // serves the family.
  const auto ssh = make_ssh(0.12);
  const auto salt = make_salt(0.12);
  const auto rho = make_rho(0.12);
  const auto shf = make_shf_qsw(0.12);
  ASSERT_TRUE(salt.mask.has_value());
  ASSERT_EQ(salt.data.shape(), ssh.data.shape());
  for (std::size_t i = 0; i < ssh.data.size(); ++i) {
    ASSERT_EQ(salt.mask->valid(i), ssh.mask->valid(i));
    ASSERT_EQ(rho.mask->valid(i), ssh.mask->valid(i));
    ASSERT_EQ(shf.mask->valid(i), ssh.mask->valid(i));
  }
}

TEST(Climate, OceanFieldsArePhysicallyPlausible) {
  const auto salt = make_salt(0.1);
  const auto rho = make_rho(0.1);
  const auto shf = make_shf_qsw(0.1);
  for (std::size_t i = 0; i < salt.data.size(); ++i) {
    if (!salt.mask->valid(i)) continue;
    ASSERT_GT(salt.data[i], 25.0f);  // PSU
    ASSERT_LT(salt.data[i], 45.0f);
    ASSERT_GT(rho.data[i], 15.0f);  // sigma-t
    ASSERT_LT(rho.data[i], 35.0f);
    ASSERT_GE(shf.data[i], 0.0f);  // W/m^2, never negative
    ASSERT_LT(shf.data[i], 500.0f);
  }
}

TEST(Climate, OceanFieldsCarryAnnualCycle) {
  for (const auto& name : {"SALT", "RHO", "SHF_QSW"}) {
    const auto field = make_dataset(name, 0.12);
    ASSERT_TRUE(field.has_period) << name;
    const auto rows = sample_time_rows(field.data, field.mask_ptr(),
                                       field.time_dim, 10, 42);
    const auto est = detect_period(rows);
    ASSERT_TRUE(est.has_value()) << name;
    EXPECT_EQ(est->period, 12u) << name;
  }
}

TEST(Climate, TimeExtentIsMultipleOfPeriod) {
  for (const auto& name : {"SSH", "SOILLIQ", "Tsfc"}) {
    const auto field = make_dataset(name, 0.15);
    ASSERT_TRUE(field.has_period);
    EXPECT_EQ(field.data.shape().dim(field.time_dim) % 12, 0u) << name;
  }
}

}  // namespace
}  // namespace cliz
