// CodecContext contract tests: streams produced through a reused context
// are byte-identical to fresh-context streams (across configs, shapes, and
// sample types), decompression works through a reused context, stage
// telemetry is populated, autotune stays deterministic under the parallel
// trial loop, and steady-state compressions through one context allocate
// almost nothing compared to a cold run.
#include "src/core/codec_context.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <numbers>

#include "src/common/rng.hpp"
#include "src/core/autotune.hpp"
#include "src/core/cliz.hpp"
#include "src/metrics/metrics.hpp"

// --- global allocation counters (this test binary only) -------------------

// The replaced operators below are the textbook malloc/free pair, but once
// both ends inline into the same frame GCC's heuristic flags the free() as
// mismatched with the replaced new.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
std::atomic<std::size_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
}  // namespace

// Every form is replaced (including nothrow, which libstdc++'s temporary
// buffers use) so no allocation pairs a library-provided new with our
// free — ASan's alloc-dealloc matching requires the full set.
void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cliz {
namespace {

struct TestField {
  NdArray<float> data;
  MaskMap mask;
};

/// Masked, periodic synthetic field in the SSH mould: [time][lat][lon].
TestField make_field(std::size_t n_time, std::size_t n_lat, std::size_t n_lon,
                     std::uint64_t seed) {
  const Shape shape({n_time, n_lat, n_lon});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(seed);
  for (std::size_t t = 0; t < n_time; ++t) {
    const double season =
        2.0 * std::numbers::pi * static_cast<double>(t) / 12.0;
    for (std::size_t la = 0; la < n_lat; ++la) {
      for (std::size_t lo = 0; lo < n_lon; ++lo) {
        const std::size_t off = (t * n_lat + la) * n_lon + lo;
        if ((la * n_lon + lo) % 17 == 0) {
          mask.mutable_data()[off] = 0;
          data[off] = 9.96921e36f;
          continue;
        }
        const double space = std::sin(0.2 * static_cast<double>(la)) +
                             std::cos(0.15 * static_cast<double>(lo));
        data[off] = static_cast<float>(
            space + 0.5 * std::cos(season) + 0.01 * rng.normal());
      }
    }
  }
  return {std::move(data), std::move(mask)};
}

PipelineConfig make_config(std::size_t nd, bool dynamic, bool classify,
                           std::size_t period) {
  PipelineConfig c = PipelineConfig::defaults(nd);
  c.dynamic_fitting = dynamic;
  c.classify_bins = classify;
  c.period = period;
  c.time_dim = 0;
  return c;
}

TEST(CodecContext, ReusedContextStreamsAreByteIdentical) {
  const auto field = make_field(24, 12, 14, 99);
  const double eb = 1e-3;
  CodecContext ctx;  // shared across every config below

  for (const bool dynamic : {false, true}) {
    for (const bool classify : {false, true}) {
      for (const std::size_t period : {std::size_t{0}, std::size_t{12}}) {
        for (const bool with_mask : {false, true}) {
          const MaskMap* mask = with_mask ? &field.mask : nullptr;
          const ClizCompressor comp(make_config(3, dynamic, classify, period));
          const auto fresh = comp.compress(field.data, eb, mask);
          const auto reused = comp.compress(field.data, eb, mask, ctx);
          EXPECT_EQ(fresh, reused)
              << "dynamic=" << dynamic << " classify=" << classify
              << " period=" << period << " mask=" << with_mask;
        }
      }
    }
  }
}

TEST(CodecContext, CrossShapeAndTypeReuseStaysIdentical) {
  CodecContext ctx;
  const double eb = 1e-3;

  // f32 3-D, f64 2-D, f32 4-D through the same context, twice over; every
  // stream must match its fresh-context twin.
  const auto f3 = make_field(20, 10, 12, 5);
  NdArray<double> d2(Shape({30, 40}));
  for (std::size_t i = 0; i < d2.size(); ++i) {
    d2[i] = std::sin(0.05 * static_cast<double>(i));
  }
  NdArray<float> f4(Shape({6, 5, 8, 7}));
  Rng rng(11);
  for (std::size_t i = 0; i < f4.size(); ++i) {
    f4[i] = static_cast<float>(rng.normal());
  }

  const ClizCompressor c3(make_config(3, true, true, 0));
  const ClizCompressor c2(PipelineConfig::defaults(2));
  const ClizCompressor c4(PipelineConfig::defaults(4));

  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(c3.compress(f3.data, eb, &f3.mask),
              c3.compress(f3.data, eb, &f3.mask, ctx));
    EXPECT_EQ(c2.compress(d2, eb, nullptr),
              c2.compress(d2, eb, nullptr, ctx));
    EXPECT_EQ(c4.compress(f4, eb, nullptr),
              c4.compress(f4, eb, nullptr, ctx));
  }
}

TEST(CodecContext, DecompressThroughReusedContext) {
  const auto field = make_field(24, 12, 14, 7);
  const double eb = 1e-3;
  const ClizCompressor comp(make_config(3, true, true, 12));
  const auto stream = comp.compress(field.data, eb, &field.mask);

  CodecContext ctx;
  for (int round = 0; round < 3; ++round) {
    const auto recon = ClizCompressor::decompress(stream, ctx);
    ASSERT_EQ(recon.shape(), field.data.shape());
    const auto stats =
        error_stats(field.data.flat(), recon.flat(), &field.mask);
    EXPECT_LE(stats.max_abs_error, eb);
    EXPECT_GT(ctx.stats.code_count, 0u);
  }
}

TEST(CodecContext, StageStatsPopulated) {
  const auto field = make_field(24, 12, 14, 3);
  const double eb = 1e-3;
  const ClizCompressor comp(make_config(3, true, true, 12));
  CodecContext ctx;
  const auto stream = comp.compress(field.data, eb, &field.mask, ctx);

  const StageStats& s = ctx.stats;
  EXPECT_GT(s.code_count, 0u);
  EXPECT_GT(s.code_entropy_bits, 0.0);
  EXPECT_GT(s.total_seconds, 0.0);
  // Periodic config: the template stage ran and emitted bytes.
  EXPECT_GT(s.at(CodecStage::kPeriodic).output_bytes, 0u);
  EXPECT_EQ(s.at(CodecStage::kPredict).input_bytes,
            field.data.size() * sizeof(float));
  EXPECT_GT(s.at(CodecStage::kEncode).output_bytes, 0u);
  // The lossless stage's output IS the stream.
  EXPECT_EQ(s.at(CodecStage::kLossless).output_bytes, stream.size());
  EXPECT_GT(s.at(CodecStage::kLossless).input_bytes,
            s.at(CodecStage::kLossless).output_bytes / 8);
  // Text/JSON renderers produce something plausible.
  EXPECT_NE(s.to_text().find("lossless"), std::string::npos);
  EXPECT_NE(s.to_json().find("\"code_count\""), std::string::npos);

  // Convenience overload mirrors into last_stats().
  (void)comp.compress(field.data, eb, &field.mask);
  EXPECT_EQ(comp.last_stats().code_count, s.code_count);
}

TEST(CodecContext, AutotuneDeterministicUnderParallelTrials) {
  const auto field = make_field(36, 14, 12, 21);
  const double eb = 1e-3;
  AutotuneOptions opts;
  opts.sampling_rate = 0.05;
  opts.time_dim = 0;

  const auto a = autotune(field.data, eb, &field.mask, opts);
  const auto b = autotune(field.data, eb, &field.mask, opts);
  AutotuneOptions serial = opts;
  serial.parallel_trials = false;
  serial.reuse_contexts = false;
  const auto c = autotune(field.data, eb, &field.mask, serial);

  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  ASSERT_EQ(a.candidates.size(), c.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].config.label(), b.candidates[i].config.label());
    EXPECT_EQ(a.candidates[i].estimated_ratio,
              b.candidates[i].estimated_ratio);
    // The pre-context serial loop ranks identically.
    EXPECT_EQ(a.candidates[i].config.label(), c.candidates[i].config.label());
    EXPECT_EQ(a.candidates[i].estimated_ratio,
              c.candidates[i].estimated_ratio);
    // Every trial carried its stage breakdown along.
    EXPECT_GT(a.candidates[i].stats.code_count, 0u);
  }
  EXPECT_EQ(a.best.label(), c.best.label());
}

TEST(CodecContext, SteadyStateAllocationsCollapse) {
  const auto field = make_field(30, 16, 18, 42);
  const double eb = 1e-3;
  const ClizCompressor comp(make_config(3, true, true, 12));

  CodecContext ctx;
  std::vector<std::uint8_t> out;
  comp.compress_into(field.data, eb, &field.mask, ctx, out);
  const auto cold_stream = out;

  // Warm-up second call (capacities settle), then measure the third.
  comp.compress_into(field.data, eb, &field.mask, ctx, out);
  const std::size_t count0 = g_alloc_count.load(std::memory_order_relaxed);
  const std::size_t bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
  comp.compress_into(field.data, eb, &field.mask, ctx, out);
  const std::size_t steady_count =
      g_alloc_count.load(std::memory_order_relaxed) - count0;
  const std::size_t steady_bytes =
      g_alloc_bytes.load(std::memory_order_relaxed) - bytes0;

  // Cold run through a fresh context, measured the same way.
  const std::size_t count1 = g_alloc_count.load(std::memory_order_relaxed);
  const std::size_t bytes1 = g_alloc_bytes.load(std::memory_order_relaxed);
  CodecContext fresh;
  std::vector<std::uint8_t> fresh_out;
  comp.compress_into(field.data, eb, &field.mask, fresh, fresh_out);
  const std::size_t cold_count =
      g_alloc_count.load(std::memory_order_relaxed) - count1;
  const std::size_t cold_bytes =
      g_alloc_bytes.load(std::memory_order_relaxed) - bytes1;

  EXPECT_EQ(out, cold_stream);
  EXPECT_EQ(fresh_out, cold_stream);
  // The hot buffers (work copy, code vectors, census maps, LZ hash chains,
  // Huffman scratch, stream staging) are all reused: steady-state
  // allocation volume must collapse versus a cold context. What remains is
  // the periodic template's NdArray round-trips plus a few classification
  // internals (measured: ~56 allocs vs ~2500 cold).
  EXPECT_LT(steady_bytes * 10, cold_bytes)
      << "steady=" << steady_bytes << "B cold=" << cold_bytes << "B";
  EXPECT_LT(steady_count * 10, cold_count)
      << "steady=" << steady_count << " cold=" << cold_count;

  // Without the periodic/classification extras the pipeline is genuinely
  // allocation-free at steady state up to a handful of incidentals
  // (measured: 7 allocs, 160 bytes).
  const ClizCompressor plain(make_config(3, true, false, 0));
  CodecContext pctx;
  std::vector<std::uint8_t> pout;
  comp.compress_into(field.data, eb, &field.mask, pctx, pout);  // settle caps
  plain.compress_into(field.data, eb, &field.mask, pctx, pout);
  plain.compress_into(field.data, eb, &field.mask, pctx, pout);
  const std::size_t count2 = g_alloc_count.load(std::memory_order_relaxed);
  plain.compress_into(field.data, eb, &field.mask, pctx, pout);
  const std::size_t plain_steady =
      g_alloc_count.load(std::memory_order_relaxed) - count2;
  EXPECT_LE(plain_steady, 32u);
}

}  // namespace
}  // namespace cliz
