#include <gtest/gtest.h>

#include "src/ndarray/layout.hpp"
#include "src/ndarray/ndarray.hpp"
#include "src/ndarray/shape.hpp"

namespace cliz {
namespace {

TEST(Shape, RowMajorStrides) {
  const Shape s({4, 5, 6});
  EXPECT_EQ(s.size(), 120u);
  EXPECT_EQ(s.stride(0), 30u);
  EXPECT_EQ(s.stride(1), 6u);
  EXPECT_EQ(s.stride(2), 1u);
}

TEST(Shape, OffsetCoordsInverse) {
  const Shape s({3, 7, 5});
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto c = s.coords(i);
    EXPECT_EQ(s.offset(c), i);
  }
}

TEST(Shape, RejectsEmptyAndZeroExtent) {
  EXPECT_THROW(Shape(DimVec{}), Error);
  EXPECT_THROW(Shape(DimVec{3, 0, 2}), Error);
}

TEST(Shape, OutOfRangeCoordinateThrows) {
  const Shape s({2, 2});
  const DimVec bad{2, 0};
  EXPECT_THROW((void)s.offset(bad), Error);
  EXPECT_THROW((void)s.coords(4), Error);
}

TEST(Shape, ToStringFormat) {
  EXPECT_EQ(Shape({26, 1800, 3600}).to_string(), "(26x1800x3600)");
}

TEST(NdArray, AtMatchesFlatIndexing) {
  NdArray<float> a(Shape({2, 3, 4}));
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i);
  EXPECT_EQ(a.at({1, 2, 3}), 23.0f);
  EXPECT_EQ(a.at({0, 0, 0}), 0.0f);
  EXPECT_EQ(a.at({1, 0, 2}), 14.0f);
}

TEST(NdArray, DataVectorSizeValidated) {
  EXPECT_THROW(NdArray<float>(Shape({2, 2}), std::vector<float>(3)), Error);
}

TEST(Fusion, NoneKeepsEveryDim) {
  const auto f = FusionSpec::none(3);
  EXPECT_EQ(f.ngroups(), 3u);
  EXPECT_EQ(f.label(), "no");
}

TEST(Fusion, LabelsMatchPaperStyle) {
  const FusionSpec f01({{0, 1}, {2, 2}});
  EXPECT_EQ(f01.label(), "0&1");
  const FusionSpec f12({{0, 0}, {1, 2}});
  EXPECT_EQ(f12.label(), "1&2");
  const FusionSpec fall({{0, 2}});
  EXPECT_EQ(fall.label(), "0&1&2");
}

TEST(Fusion, RejectsNonTilingGroups) {
  EXPECT_THROW(FusionSpec({{0, 0}, {2, 2}}), Error);   // gap
  EXPECT_THROW(FusionSpec({{1, 2}}), Error);           // does not start at 0
  EXPECT_THROW(FusionSpec({{0, 1}, {1, 2}}), Error);   // overlap
}

TEST(Fusion, GroupOf) {
  const FusionSpec f({{0, 1}, {2, 2}});
  EXPECT_EQ(f.group_of(0), 0u);
  EXPECT_EQ(f.group_of(1), 0u);
  EXPECT_EQ(f.group_of(2), 1u);
}

TEST(Fusion, FusedAxesExtentAndStride) {
  const Shape s({4, 6, 5});
  const auto axes = fused_axes(s, FusionSpec({{0, 1}, {2, 2}}));
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].extent, 24u);
  EXPECT_EQ(axes[0].stride, 5u);  // stride of the last fused dim
  EXPECT_EQ(axes[1].extent, 5u);
  EXPECT_EQ(axes[1].stride, 1u);
}

TEST(Fusion, FullFusionIsFlat) {
  const Shape s({4, 6, 5});
  const auto axes = fused_axes(s, FusionSpec({{0, 2}}));
  ASSERT_EQ(axes.size(), 1u);
  EXPECT_EQ(axes[0].extent, 120u);
  EXPECT_EQ(axes[0].stride, 1u);
}

TEST(Fusion, FusedAxisOffsetsEnumerateAllPoints) {
  // A fused axis must walk exactly the same offsets as nested loops over
  // the member dims.
  const Shape s({3, 4, 5});
  const auto axes = fused_axes(s, FusionSpec({{0, 1}, {2, 2}}));
  std::vector<bool> seen(s.size(), false);
  for (std::size_t a = 0; a < axes[0].extent; ++a) {
    for (std::size_t b = 0; b < axes[1].extent; ++b) {
      const std::size_t off = a * axes[0].stride + b * axes[1].stride;
      ASSERT_LT(off, s.size());
      EXPECT_FALSE(seen[off]);
      seen[off] = true;
    }
  }
  for (const bool v : seen) EXPECT_TRUE(v);
}

TEST(Layout, AllFusionsCountIsTwoPowNMinusOne) {
  EXPECT_EQ(all_fusions(1).size(), 1u);
  EXPECT_EQ(all_fusions(2).size(), 2u);
  EXPECT_EQ(all_fusions(3).size(), 4u);  // paper's four fusion options
  EXPECT_EQ(all_fusions(4).size(), 8u);
}

TEST(Layout, AllPermutationsCount) {
  EXPECT_EQ(all_permutations(1).size(), 1u);
  EXPECT_EQ(all_permutations(3).size(), 6u);  // paper's six sequences
  EXPECT_EQ(all_permutations(4).size(), 24u);
}

TEST(Layout, PermLabel) {
  const std::vector<std::size_t> p{2, 0, 1};
  EXPECT_EQ(perm_label(p), "201");
}

TEST(Layout, InducedAxisOrderFollowsFirstAppearance) {
  // Paper combo: sequence "201" with fusion "1&2" -> the fused axis {1,2}
  // appears first (via dim 2), then axis {0}.
  const FusionSpec f({{0, 0}, {1, 2}});
  const std::vector<std::size_t> perm{2, 0, 1};
  const auto order = induced_axis_order(f, perm);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

TEST(Layout, InducedAxisOrderIdentity) {
  const FusionSpec f = FusionSpec::none(3);
  const std::vector<std::size_t> perm{0, 1, 2};
  const auto order = induced_axis_order(f, perm);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Layout, InducedAxisOrderRejectsIncompletePerm) {
  const FusionSpec f = FusionSpec::none(3);
  const std::vector<std::size_t> perm{0, 1};
  EXPECT_THROW(induced_axis_order(f, perm), Error);
}

}  // namespace
}  // namespace cliz
