#include "src/sperr/sperr_like.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/metrics/metrics.hpp"
#include "src/sperr/wavelet.hpp"

namespace cliz {
namespace {

NdArray<float> smooth_array(const DimVec& dims, std::uint64_t seed,
                            double noise = 0.005) {
  const Shape shape(dims);
  NdArray<float> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += std::sin(0.07 * static_cast<double>(c[d]) +
                    0.3 * static_cast<double>(d));
    }
    a[i] = static_cast<float>(v + noise * rng.normal());
  }
  return a;
}

class WaveletInvertibility : public ::testing::TestWithParam<DimVec> {};

TEST_P(WaveletInvertibility, ForwardInverseIsIdentity) {
  const Shape shape(GetParam());
  const WaveletTransform w(shape, 4);
  Rng rng(51);
  std::vector<double> data(shape.size());
  for (auto& v : data) v = rng.uniform(-10.0, 10.0);
  const auto original = data;
  w.forward(data);
  w.inverse(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(data[i], original[i], 1e-9) << "offset " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, WaveletInvertibility,
                         ::testing::Values(DimVec{16}, DimVec{17}, DimVec{64},
                                           DimVec{9, 13}, DimVec{16, 16},
                                           DimVec{32, 17}, DimVec{8, 9, 10},
                                           DimVec{5, 6, 7},
                                           DimVec{4, 4, 4, 4}));

TEST(Wavelet, LevelsClampToShape) {
  EXPECT_EQ(WaveletTransform(Shape({4, 4}), 10).levels(), 1);
  EXPECT_EQ(WaveletTransform(Shape({64}), 3).levels(), 3);
  EXPECT_EQ(WaveletTransform(Shape({3, 64}), 4).levels(), 0);
}

TEST(Wavelet, ZeroLevelTransformIsIdentity) {
  const Shape shape({3, 3});
  const WaveletTransform w(shape, 4);
  ASSERT_EQ(w.levels(), 0);
  std::vector<double> data{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto orig = data;
  w.forward(data);
  EXPECT_EQ(data, orig);
}

TEST(Wavelet, EnergyRoughlyPreserved) {
  // The scaled CDF 9/7 is near-orthonormal; Parseval should hold within a
  // modest factor on random data.
  const Shape shape({64, 64});
  const WaveletTransform w(shape, 3);
  Rng rng(52);
  std::vector<double> data(shape.size());
  for (auto& v : data) v = rng.normal();
  double e_in = 0.0;
  for (const double v : data) e_in += v * v;
  w.forward(data);
  double e_out = 0.0;
  for (const double v : data) e_out += v * v;
  EXPECT_GT(e_out, 0.4 * e_in);
  EXPECT_LT(e_out, 2.5 * e_in);
}

TEST(Wavelet, CompactsSmoothSignalIntoLowPass) {
  const Shape shape({256});
  const WaveletTransform w(shape, 3);
  std::vector<double> data(256);
  for (std::size_t i = 0; i < 256; ++i) {
    data[i] = std::sin(0.05 * static_cast<double>(i));
  }
  w.forward(data);
  // Detail half must carry far less energy than the approximation part.
  double low = 0.0;
  double high = 0.0;
  for (std::size_t i = 0; i < 128; ++i) low += data[i] * data[i];
  for (std::size_t i = 128; i < 256; ++i) high += data[i] * data[i];
  EXPECT_LT(high, 0.01 * low);
}

struct SperrCase {
  DimVec dims;
  double eb;
};

class SperrRoundTrip : public ::testing::TestWithParam<SperrCase> {};

TEST_P(SperrRoundTrip, BoundHoldsEverywhere) {
  const auto& [dims, eb] = GetParam();
  const auto data = smooth_array(dims, 61);
  const auto stream = SperrLikeCompressor().compress(data, eb);
  const auto recon = SperrLikeCompressor::decompress(stream);
  ASSERT_EQ(recon.shape(), data.shape());
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, eb);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SperrRoundTrip,
    ::testing::Values(SperrCase{{128}, 1e-2}, SperrCase{{128}, 1e-5},
                      SperrCase{{33, 45}, 1e-3}, SperrCase{{64, 64}, 1e-1},
                      SperrCase{{16, 18, 20}, 1e-3},
                      SperrCase{{9, 11, 13}, 1e-2},
                      SperrCase{{3, 3}, 1e-3},  // below wavelet minimum
                      SperrCase{{6, 6, 6, 6}, 1e-2}));

TEST(SperrLike, OutlierCorrectionsEnforceBoundOnSpikyData) {
  const Shape shape({64, 64});
  NdArray<float> data(shape);
  Rng rng(62);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(0.1 * rng.normal());
  }
  // Spikes that wavelet coding smears; corrections must fix them.
  for (std::size_t i = 0; i < data.size(); i += 97) data[i] = 50.0f;
  const auto stream = SperrLikeCompressor().compress(data, 1e-2);
  const auto recon = SperrLikeCompressor::decompress(stream);
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-2);
}

TEST(SperrLike, MaskStyleFillValuesStayBounded) {
  // Climate fill values (~1e36) next to small data: the wavelet smears them
  // into neighbouring points with astronomical leakage; the correction pass
  // must restore the bound everywhere without cancellation loss.
  const Shape shape({48, 48});
  NdArray<float> data(shape);
  Rng rng(68);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto c = shape.coords(i);
    const bool land = (c[0] / 8 + c[1] / 8) % 2 == 0;
    data[i] = land ? 9.96921e36f
                   : static_cast<float>(
                         std::sin(0.2 * static_cast<double>(c[0])) +
                         0.01 * rng.normal());
  }
  const double eb = 1e-3;
  const auto stream = SperrLikeCompressor().compress(data, eb);
  const auto recon = SperrLikeCompressor::decompress(stream);
  // Bound must hold at every point, including next to fill values. The
  // fill values themselves round-trip through the exact-escape path.
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::abs(static_cast<double>(recon[i]) -
                       static_cast<double>(data[i])),
              eb)
        << "offset " << i << " value " << data[i];
  }
}

TEST(SperrLike, SmoothDataCompressesWell) {
  const auto data = smooth_array({64, 64, 16}, 63, 0.0);
  const auto stream = SperrLikeCompressor().compress(data, 1e-3);
  EXPECT_GT(compression_ratio(data.size() * 4, stream.size()), 8.0);
}

TEST(SperrLike, LooserBoundGivesSmallerStream) {
  const auto data = smooth_array({48, 48}, 64);
  const auto loose = SperrLikeCompressor().compress(data, 1e-1);
  const auto tight = SperrLikeCompressor().compress(data, 1e-5);
  EXPECT_LT(loose.size(), tight.size());
}

TEST(SperrLike, CorruptStreamThrows) {
  const auto data = smooth_array({16, 16}, 65);
  auto stream = SperrLikeCompressor().compress(data, 1e-3);
  stream.resize(stream.size() / 2);
  EXPECT_THROW((void)SperrLikeCompressor::decompress(stream), Error);
}

TEST(SperrLike, DeterministicOutput) {
  const auto data = smooth_array({24, 24}, 66);
  EXPECT_EQ(SperrLikeCompressor().compress(data, 1e-3),
            SperrLikeCompressor().compress(data, 1e-3));
}

TEST(SperrLike, RejectsNonPositiveBound) {
  const auto data = smooth_array({8, 8}, 67);
  EXPECT_THROW((void)SperrLikeCompressor().compress(data, 0.0), Error);
}

}  // namespace
}  // namespace cliz
