// decompress_into contract tests: the caller-supplied-output decode path
// produces exactly the values of the returning variant (both sample types,
// array and span bindings, plain and chunked frames), rejects wrong shapes
// / sizes / sample types before touching the output, and — the point of
// the API — reaches a single-digit-allocation steady state when driven
// through a reused CodecContext or ChunkedScratch.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <numbers>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/chunked.hpp"
#include "src/core/cliz.hpp"
#include "src/core/codec_context.hpp"
#include "src/core/compressor.hpp"
#include "src/metrics/metrics.hpp"

// --- global allocation counters (this test binary only) -------------------

// The replaced operators below are the textbook malloc/free pair, but once
// both ends inline into the same frame GCC's heuristic flags the free() as
// mismatched with the replaced new.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
std::atomic<std::size_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
}  // namespace

// Every form is replaced (including nothrow, which libstdc++'s temporary
// buffers use) so no allocation pairs a library-provided new with our
// free — ASan's alloc-dealloc matching requires the full set.
void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cliz {
namespace {

struct TestField {
  NdArray<float> data;
  MaskMap mask;
};

/// Masked, periodic synthetic field in the SSH mould: [time][lat][lon].
TestField make_field(std::size_t n_time, std::size_t n_lat, std::size_t n_lon,
                     std::uint64_t seed) {
  const Shape shape({n_time, n_lat, n_lon});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(seed);
  for (std::size_t t = 0; t < n_time; ++t) {
    for (std::size_t la = 0; la < n_lat; ++la) {
      for (std::size_t lo = 0; lo < n_lon; ++lo) {
        const std::size_t off = (t * n_lat + la) * n_lon + lo;
        if ((la * n_lon + lo) % 17 == 0) {
          mask.mutable_data()[off] = 0;
          data[off] = 9.96921e36f;
          continue;
        }
        const double space = std::sin(0.2 * static_cast<double>(la)) +
                             std::cos(0.15 * static_cast<double>(lo));
        const double season =
            std::cos(2.0 * std::numbers::pi * static_cast<double>(t) / 12.0);
        data[off] =
            static_cast<float>(space + 0.5 * season + 0.01 * rng.normal());
      }
    }
  }
  return {std::move(data), std::move(mask)};
}

PipelineConfig make_config(bool dynamic, bool classify, std::size_t period) {
  PipelineConfig c = PipelineConfig::defaults(3);
  c.dynamic_fitting = dynamic;
  c.classify_bins = classify;
  c.period = period;
  c.time_dim = 0;
  return c;
}

// --- value equality with the returning variant --------------------------

TEST(DecompressInto, MatchesReturningVariantAcrossConfigs) {
  const auto field = make_field(24, 12, 14, 99);
  const double eb = 1e-3;
  CodecContext ctx;
  NdArray<float> out(field.data.shape());

  for (const bool dynamic : {false, true}) {
    for (const bool classify : {false, true}) {
      for (const std::size_t period : {std::size_t{0}, std::size_t{12}}) {
        const ClizCompressor comp(make_config(dynamic, classify, period));
        const auto stream = comp.compress(field.data, eb, &field.mask);
        const auto expected = ClizCompressor::decompress(stream);

        ClizCompressor::decompress_into(stream, ctx, out);
        ASSERT_EQ(out.shape(), expected.shape());
        for (std::size_t i = 0; i < out.size(); ++i) {
          ASSERT_EQ(out[i], expected[i])
              << "i=" << i << " dynamic=" << dynamic
              << " classify=" << classify << " period=" << period;
        }
      }
    }
  }
}

TEST(DecompressInto, ContextFreeOverloadMatches) {
  const auto field = make_field(16, 10, 12, 5);
  const auto stream = ClizCompressor(make_config(true, true, 0))
                          .compress(field.data, 1e-3, &field.mask);
  const auto expected = ClizCompressor::decompress(stream);
  NdArray<float> out(field.data.shape());
  ClizCompressor::decompress_into(stream, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], expected[i]);
  }
}

TEST(DecompressInto, Float64MatchesReturningVariant) {
  NdArray<double> data(Shape({18, 9, 11}));
  Rng rng(13);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.04 * static_cast<double>(i)) + 0.01 * rng.normal();
  }
  const auto stream =
      ClizCompressor(PipelineConfig::defaults(3)).compress(data, 1e-5);
  const auto expected = ClizCompressor::decompress_f64(stream);

  CodecContext ctx;
  NdArray<double> out(data.shape());
  ClizCompressor::decompress_into(stream, ctx, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], expected[i]);
  }
}

TEST(DecompressInto, SpanVariantReturnsShapeAndValues) {
  const auto field = make_field(12, 8, 10, 3);
  const auto stream = ClizCompressor(make_config(true, false, 0))
                          .compress(field.data, 1e-3, &field.mask);
  const auto expected = ClizCompressor::decompress(stream);

  CodecContext ctx;
  std::vector<float> buf(field.data.size());
  const Shape shape = ClizCompressor::decompress_into(
      stream, ctx, std::span<float>(buf));
  EXPECT_EQ(shape, field.data.shape());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], expected[i]);
  }
}

TEST(DecompressInto, CompressorInterfaceRoutesToNativePath) {
  const auto field = make_field(12, 10, 10, 8);
  auto comp = make_compressor("cliz");
  comp->set_mask(&field.mask);
  comp->set_time_dim(0);
  const auto stream = comp->compress(field.data, 1e-3);
  const auto expected = comp->decompress(stream);

  NdArray<float> out(field.data.shape());
  comp->decompress_into(stream, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], expected[i]);
  }
}

TEST(DecompressInto, CompressorDefaultImplementationCopies) {
  // Codecs without a native into-path fall back to decompress + copy; the
  // shape contract is identical.
  const auto field = make_field(10, 8, 8, 4);
  auto comp = make_compressor("sz3");
  const auto stream = comp->compress(field.data, 1e-3);
  const auto expected = comp->decompress(stream);

  NdArray<float> out(field.data.shape());
  comp->decompress_into(stream, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], expected[i]);
  }
  NdArray<float> wrong(Shape({8, 8, 10}));
  EXPECT_THROW(comp->decompress_into(stream, wrong), Error);
}

// --- error paths --------------------------------------------------------

TEST(DecompressInto, WrongShapeThrowsBeforeWriting) {
  const auto field = make_field(12, 8, 10, 6);
  const auto stream = ClizCompressor(make_config(true, true, 0))
                          .compress(field.data, 1e-3, &field.mask);
  CodecContext ctx;

  // Same element count, different shape: still rejected.
  NdArray<float> transposed(Shape({10, 8, 12}));
  for (std::size_t i = 0; i < transposed.size(); ++i) {
    transposed[i] = -1.0f;  // sentinel
  }
  EXPECT_THROW(ClizCompressor::decompress_into(stream, ctx, transposed),
               Error);
  for (std::size_t i = 0; i < transposed.size(); ++i) {
    ASSERT_EQ(transposed[i], -1.0f) << "output written despite shape reject";
  }

  NdArray<float> small(Shape({4, 4}));
  EXPECT_THROW(ClizCompressor::decompress_into(stream, ctx, small), Error);
  NdArray<float> empty;
  EXPECT_THROW(ClizCompressor::decompress_into(stream, ctx, empty), Error);
}

TEST(DecompressInto, WrongSpanSizeThrows) {
  const auto field = make_field(12, 8, 10, 7);
  const auto stream = ClizCompressor(make_config(false, false, 0))
                          .compress(field.data, 1e-3, nullptr);
  CodecContext ctx;

  std::vector<float> small(field.data.size() - 1);
  EXPECT_THROW((void)ClizCompressor::decompress_into(stream, ctx,
                                                     std::span<float>(small)),
               Error);
  std::vector<float> big(field.data.size() + 1);
  EXPECT_THROW((void)ClizCompressor::decompress_into(stream, ctx,
                                                     std::span<float>(big)),
               Error);
}

TEST(DecompressInto, SampleTypeMismatchThrows) {
  const auto field = make_field(12, 8, 10, 9);
  const auto f32_stream = ClizCompressor(make_config(false, false, 0))
                              .compress(field.data, 1e-3, nullptr);
  NdArray<double> f64_data(field.data.shape());
  for (std::size_t i = 0; i < f64_data.size(); ++i) {
    f64_data[i] = static_cast<double>(field.data[i]);
  }
  const auto f64_stream =
      ClizCompressor(make_config(false, false, 0)).compress(f64_data, 1e-3);

  CodecContext ctx;
  NdArray<float> f32_out(field.data.shape());
  NdArray<double> f64_out(field.data.shape());
  EXPECT_THROW(ClizCompressor::decompress_into(f64_stream, ctx, f32_out),
               Error);
  EXPECT_THROW(ClizCompressor::decompress_into(f32_stream, ctx, f64_out),
               Error);
}

// --- chunked frames -----------------------------------------------------

TEST(DecompressInto, ChunkedMatchesReturningVariant) {
  const auto field = make_field(24, 10, 12, 15);
  const double eb = 1e-3;
  ChunkedOptions opts;
  opts.chunks = 4;
  const auto stream = chunked_compress(field.data, eb,
                                       make_config(true, true, 12),
                                       &field.mask, opts);
  const auto expected = chunked_decompress(stream);

  ChunkedScratch scratch;
  NdArray<float> out(field.data.shape());
  chunked_decompress_into(stream, out, &scratch);
  ASSERT_EQ(out.shape(), expected.shape());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], expected[i]);
  }

  NdArray<float> wrong(Shape({10, 24, 12}));
  EXPECT_THROW(chunked_decompress_into(stream, wrong, &scratch), Error);
}

// --- steady-state allocation profile ------------------------------------

TEST(DecompressInto, SteadyStateSingleDigitAllocations) {
  const auto field = make_field(30, 16, 18, 42);
  const auto stream = ClizCompressor(make_config(true, false, 0))
                          .compress(field.data, 1e-3, nullptr);

  CodecContext ctx;
  NdArray<float> out(field.data.shape());
  // Cold run through a fresh context, for the collapse comparison.
  const std::size_t cold0 = g_alloc_count.load(std::memory_order_relaxed);
  ClizCompressor::decompress_into(stream, ctx, out);
  const std::size_t cold_count =
      g_alloc_count.load(std::memory_order_relaxed) - cold0;

  // Warm-up second call (capacities settle), then measure the third.
  ClizCompressor::decompress_into(stream, ctx, out);
  const std::size_t count0 = g_alloc_count.load(std::memory_order_relaxed);
  ClizCompressor::decompress_into(stream, ctx, out);
  const std::size_t steady_count =
      g_alloc_count.load(std::memory_order_relaxed) - count0;

  // The acceptance bar of the into-API: repeated same-shape decodes
  // through one context are single-digit-allocation events (the decoded
  // Shape's two vectors plus incidentals), versus hundreds cold.
  EXPECT_LE(steady_count, 10u);
  EXPECT_LT(steady_count * 10, cold_count)
      << "steady=" << steady_count << " cold=" << cold_count;
}

TEST(DecompressInto, RicherConfigsStillCollapse) {
  // Mask + periodic template + classification: the template expansion and
  // multi-tree decode all draw on context scratch. Decoding is far cheaper
  // than encoding even cold, so the bar here is a small absolute steady
  // budget (the nested template stream adds its own header round-trip)
  // and a clear improvement over the cold run.
  const auto field = make_field(36, 16, 18, 17);
  const auto stream = ClizCompressor(make_config(true, true, 12))
                          .compress(field.data, 1e-3, &field.mask);

  CodecContext ctx;
  NdArray<float> out(field.data.shape());
  const std::size_t cold0 = g_alloc_count.load(std::memory_order_relaxed);
  ClizCompressor::decompress_into(stream, ctx, out);
  const std::size_t cold_count =
      g_alloc_count.load(std::memory_order_relaxed) - cold0;

  ClizCompressor::decompress_into(stream, ctx, out);
  const std::size_t count0 = g_alloc_count.load(std::memory_order_relaxed);
  ClizCompressor::decompress_into(stream, ctx, out);
  const std::size_t steady_count =
      g_alloc_count.load(std::memory_order_relaxed) - count0;

  EXPECT_LE(steady_count, 24u);
  EXPECT_LT(steady_count * 3, cold_count)
      << "steady=" << steady_count << " cold=" << cold_count;
}

TEST(DecompressInto, ChunkedSteadyStateBoundedPerChunk) {
  const auto field = make_field(32, 16, 18, 23);
  const double eb = 1e-3;
  const PipelineConfig config = make_config(true, false, 0);
  constexpr std::size_t kChunks = 4;
  ChunkedOptions opts;
  opts.chunks = kChunks;
  ChunkedScratch scratch;
  opts.scratch = &scratch;

  // Compression side: one reused scratch, frame assembled into a reused
  // buffer. Steady state must stay within the 10-allocation budget per
  // chunk (each chunk's Shape round-trip plus incidentals).
  std::vector<std::uint8_t> stream;
  chunked_compress_into(field.data, eb, config, nullptr, opts, stream);
  chunked_compress_into(field.data, eb, config, nullptr, opts, stream);
  const std::size_t c0 = g_alloc_count.load(std::memory_order_relaxed);
  chunked_compress_into(field.data, eb, config, nullptr, opts, stream);
  const std::size_t compress_steady =
      g_alloc_count.load(std::memory_order_relaxed) - c0;
  EXPECT_LE(compress_steady, 10u * kChunks)
      << "chunked compress steady allocations";

  // Decompression side: same budget, decoding straight into a reused
  // caller array through the same pool.
  NdArray<float> out(field.data.shape());
  chunked_decompress_into(stream, out, &scratch);
  chunked_decompress_into(stream, out, &scratch);
  const std::size_t d0 = g_alloc_count.load(std::memory_order_relaxed);
  chunked_decompress_into(stream, out, &scratch);
  const std::size_t decompress_steady =
      g_alloc_count.load(std::memory_order_relaxed) - d0;
  EXPECT_LE(decompress_steady, 10u * kChunks)
      << "chunked decompress steady allocations";

  // Sanity: the steady-state frames are still correct.
  EXPECT_LE(error_stats(field.data.flat(), out.flat()).max_abs_error, eb);
}

}  // namespace
}  // namespace cliz
