// ContextPool contract tests: a context is handed to exactly one lease at
// a time (hammered from many raw std::threads so the TSan CI job checks
// the same property under the race detector), try_acquire is honest about
// exhaustion, leases release exactly once across moves, checkout telemetry
// adds up, and the pooled chunked compressor emits frames byte-identical
// to a hand-built serial loop of fresh per-chunk compressions.
#include "src/core/context_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstring>
#include <numbers>
#include <optional>
#include <thread>

#include "src/common/bytestream.hpp"
#include "src/common/crc32c.hpp"
#include "src/common/rng.hpp"
#include "src/core/chunked.hpp"
#include "src/core/cliz.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

struct TestField {
  NdArray<float> data;
  MaskMap mask;
};

/// Masked, periodic synthetic field in the SSH mould: [time][lat][lon].
TestField make_field(std::size_t n_time, std::size_t n_lat, std::size_t n_lon,
                     std::uint64_t seed) {
  const Shape shape({n_time, n_lat, n_lon});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(seed);
  for (std::size_t t = 0; t < n_time; ++t) {
    for (std::size_t la = 0; la < n_lat; ++la) {
      for (std::size_t lo = 0; lo < n_lon; ++lo) {
        const std::size_t off = (t * n_lat + la) * n_lon + lo;
        if ((la * n_lon + lo) % 17 == 0) {
          mask.mutable_data()[off] = 0;
          data[off] = 9.96921e36f;
          continue;
        }
        const double space = std::sin(0.2 * static_cast<double>(la)) +
                             std::cos(0.15 * static_cast<double>(lo));
        const double season =
            std::cos(2.0 * std::numbers::pi * static_cast<double>(t) / 12.0);
        data[off] =
            static_cast<float>(space + 0.5 * season + 0.01 * rng.normal());
      }
    }
  }
  return {std::move(data), std::move(mask)};
}

template <typename T>
double max_abs_err(const NdArray<T>& a, const NdArray<T>& b) {
  double e = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    e = std::max(e, std::abs(static_cast<double>(a[i]) -
                             static_cast<double>(b[i])));
  }
  return e;
}

// --- exclusive handout --------------------------------------------------

TEST(ContextPool, ExclusiveHandoutUnderContention) {
  constexpr std::size_t kSlots = 4;
  constexpr std::size_t kThreads = 8;  // 2x oversubscribed: acquire() spins
  constexpr int kItersPerThread = 2000;

  ContextPool pool(kSlots);
  ASSERT_EQ(pool.size(), kSlots);

  // One holder count per slot; any count other than 0 -> 1 -> 0 while a
  // lease is alive means two leases held the same context at once.
  std::array<std::atomic<int>, kSlots> holders{};
  std::atomic<int> violations{0};
  std::atomic<int> corruptions{0};
  std::atomic<std::uint64_t> grants{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const ContextPool::Lease lease = pool.acquire();
        if (holders[lease.slot()].fetch_add(1, std::memory_order_acq_rel) !=
            0) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        // Write-then-read through the leased context: under a double
        // handout this is a data race TSan flags and a value mismatch we
        // count even without the sanitizer.
        auto& scratch = lease->slab<float>();
        const float stamp = static_cast<float>(t * kItersPerThread + i);
        scratch.assign(8, stamp);
        for (const float v : scratch) {
          if (v != stamp) corruptions.fetch_add(1, std::memory_order_relaxed);
        }
        holders[lease.slot()].fetch_sub(1, std::memory_order_acq_rel);
        grants.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // A concurrent stats() reader alongside the hammer: telemetry reads must
  // be race-free (TSan checks that) and the counters monotone, but their
  // exact values are NOT comparable to `grants` while leases are still
  // outstanding — checkouts increments inside acquire(), before the worker
  // bumps its own counter. The exact-value assertions therefore stay below,
  // after every worker has joined.
  std::atomic<bool> stop_poller{false};
  std::atomic<std::uint64_t> poller_reads{0};
  std::thread poller([&] {
    std::uint64_t last_checkouts = 0;
    std::uint64_t last_warm = 0;
    // do-while: at least one read happens even when the hammer drains
    // before this thread is first scheduled (a loaded machine can finish
    // the workers in single-digit milliseconds).
    do {
      const auto s = pool.stats();
      EXPECT_EQ(s.contexts, kSlots);
      EXPECT_GE(s.checkouts, last_checkouts) << "checkouts went backwards";
      EXPECT_GE(s.warm_hits, last_warm) << "warm hits went backwards";
      EXPECT_LE(s.warm_hits, s.checkouts);
      last_checkouts = s.checkouts;
      last_warm = s.warm_hits;
      poller_reads.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    } while (!stop_poller.load(std::memory_order_acquire));
  });

  for (auto& w : workers) w.join();
  stop_poller.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(poller_reads.load(), 0u);

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(corruptions.load(), 0);
  EXPECT_EQ(grants.load(), kThreads * kItersPerThread);

  // Exact telemetry only after the joins above: every lease returned, so
  // checkouts and grants have converged.
  const auto stats = pool.stats();
  EXPECT_EQ(stats.contexts, kSlots);
  // Every grant is exactly one successful checkout (failed probes do not
  // count), and at most one cold checkout per slot.
  EXPECT_EQ(stats.checkouts, kThreads * kItersPerThread);
  EXPECT_GE(stats.warm_hits, stats.checkouts - kSlots);
  EXPECT_LT(stats.warm_hits, stats.checkouts);
}

// --- try_acquire / release ----------------------------------------------

TEST(ContextPool, TryAcquireReportsExhaustion) {
  ContextPool pool(2);
  auto a = pool.try_acquire();
  auto b = pool.try_acquire();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->slot(), b->slot());

  // Every slot is out: the non-blocking checkout must refuse.
  EXPECT_FALSE(pool.try_acquire().has_value());

  // Returning one lease frees exactly that slot.
  const std::size_t freed = b->slot();
  b.reset();
  auto c = pool.try_acquire();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->slot(), freed);
  EXPECT_FALSE(pool.try_acquire().has_value());
}

TEST(ContextPool, AcquireBlocksUntilAnotherThreadReleases) {
  ContextPool pool(1);
  std::optional<ContextPool::Lease> held = pool.acquire();
  std::atomic<bool> release_requested{false};

  std::thread releaser([&] {
    while (!release_requested.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    held.reset();
  });

  release_requested.store(true, std::memory_order_release);
  // Spins until the releaser thread drops the only lease; completing at
  // all is the assertion.
  const ContextPool::Lease lease = pool.acquire();
  EXPECT_EQ(lease.slot(), 0u);
  releaser.join();
}

TEST(ContextPool, LeaseMovesReleaseExactlyOnce) {
  ContextPool pool(2);
  {
    ContextPool::Lease a = pool.acquire();
    const std::size_t slot_a = a.slot();
    // Move construction transfers the claim without releasing it.
    const ContextPool::Lease b = std::move(a);
    EXPECT_EQ(b.slot(), slot_a);
    auto probe = pool.try_acquire();
    ASSERT_TRUE(probe.has_value());
    EXPECT_NE(probe->slot(), slot_a);
    EXPECT_FALSE(pool.try_acquire().has_value());
  }
  // Both leases gone: the full pool is available again.
  auto x = pool.try_acquire();
  auto y = pool.try_acquire();
  EXPECT_TRUE(x.has_value());
  EXPECT_TRUE(y.has_value());
}

TEST(ContextPool, LeaseMoveAssignReleasesTheOldClaim) {
  ContextPool pool(2);
  ContextPool::Lease a = pool.acquire();
  ContextPool::Lease b = pool.acquire();
  const std::size_t slot_a = a.slot();
  const std::size_t slot_b = b.slot();
  a = std::move(b);  // must release slot_a, keep slot_b claimed
  EXPECT_EQ(a.slot(), slot_b);
  auto probe = pool.try_acquire();
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->slot(), slot_a);
}

TEST(ContextPool, DefaultSizeCoversHardwareThreads) {
  const ContextPool pool;
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.stats().contexts, pool.size());
}

// --- telemetry ----------------------------------------------------------

TEST(ContextPool, StatsCountColdAndWarmCheckouts) {
  ContextPool pool(1);
  for (int i = 0; i < 3; ++i) {
    const ContextPool::Lease lease = pool.acquire();
    (void)lease;
  }
  auto stats = pool.stats();
  EXPECT_EQ(stats.checkouts, 3u);
  EXPECT_EQ(stats.warm_hits, 2u);  // first draw of the slot was cold
  EXPECT_EQ(stats.contexts, 1u);

  pool.reset_stats();
  stats = pool.stats();
  EXPECT_EQ(stats.checkouts, 0u);
  EXPECT_EQ(stats.warm_hits, 0u);
  EXPECT_EQ(stats.contexts, 1u);

  // Warmth survives a stats reset: the context is still sized.
  const ContextPool::Lease lease = pool.acquire();
  (void)lease;
  EXPECT_EQ(pool.stats().warm_hits, 1u);
}

// --- byte identity vs the serial pre-pool path --------------------------

/// The chunked frame as the pre-pool serial code path produced it: the
/// same slab arithmetic and per-chunk degradation rule, but every chunk
/// compressed by a fresh compressor with fresh scratch, strictly in order.
template <typename T>
std::vector<std::uint8_t> serial_reference_frame(const NdArray<T>& data,
                                                 double eb,
                                                 const PipelineConfig& config,
                                                 const MaskMap* mask,
                                                 std::size_t chunks) {
  const Shape& shape = data.shape();
  chunks = std::clamp<std::size_t>(chunks, 1, shape.dim(0));
  const std::size_t row = shape.size() / shape.dim(0);

  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::vector<std::vector<std::uint8_t>> streams;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = shape.dim(0) * c / chunks;
    const std::size_t hi = shape.dim(0) * (c + 1) / chunks;
    DimVec dims = shape.dims();
    dims[0] = hi - lo;
    NdArray<T> chunk{Shape(std::move(dims))};
    std::memcpy(chunk.data(), data.data() + lo * row,
                chunk.size() * sizeof(T));
    std::optional<MaskMap> cmask;
    if (mask != nullptr) {
      DimVec start(shape.ndims(), 0);
      start[0] = lo;
      cmask = mask->crop(start, chunk.shape());
    }
    PipelineConfig cconfig = config;
    if (config.period > 0 && config.time_dim == 0 &&
        hi - lo < 2 * config.period) {
      cconfig.period = 0;  // undersized chunk: periodicity degrades
    }
    ranges.emplace_back(lo, hi);
    streams.push_back(ClizCompressor(std::move(cconfig))
                          .compress(chunk, eb,
                                    cmask.has_value() ? &*cmask : nullptr));
  }

  // v2 frame layout: CRC-covered header first, payload blocks after.
  ByteWriter w;
  w.put(std::uint32_t{0x434C4B32u});  // "CLK2"
  w.put_varint(shape.ndims());
  for (const std::size_t d : shape.dims()) w.put_varint(d);
  w.put_varint(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    w.put_varint(ranges[c].first);
    w.put_varint(ranges[c].second);
    w.put(crc32c(streams[c]));
  }
  w.put(crc32c(w.bytes().subspan(4)));
  for (std::size_t c = 0; c < chunks; ++c) w.put_block(streams[c]);
  return std::move(w).take();
}

TEST(ContextPool, PooledChunkedFrameMatchesSerialReference) {
  const auto field = make_field(36, 14, 12, 7);
  const double eb = 1e-3;
  PipelineConfig config = PipelineConfig::defaults(3);
  config.period = 12;
  config.classify_bins = true;

  const auto expected =
      serial_reference_frame(field.data, eb, config, &field.mask, 3);

  ChunkedScratch scratch;
  ChunkedOptions opts;
  opts.chunks = 3;
  opts.scratch = &scratch;
  const auto pooled =
      chunked_compress(field.data, eb, config, &field.mask, opts);
  EXPECT_EQ(pooled, expected);

  // Second call through the now-warm scratch: still identical.
  std::vector<std::uint8_t> again;
  chunked_compress_into(field.data, eb, config, &field.mask, opts, again);
  EXPECT_EQ(again, expected);
  EXPECT_GT(scratch.pool.stats().warm_hits, 0u);

  // And the scratch-free convenience call agrees too.
  ChunkedOptions plain_opts;
  plain_opts.chunks = 3;
  EXPECT_EQ(chunked_compress(field.data, eb, config, &field.mask, plain_opts),
            expected);

  // The frame decodes within bound.
  const auto recon = chunked_decompress(expected, &scratch);
  EXPECT_LE(error_stats(field.data.flat(), recon.flat(), &field.mask)
                .max_abs_error,
            eb);
}

TEST(ContextPool, PooledChunkedFrameMatchesSerialReferenceF64) {
  NdArray<double> data(Shape({25, 9, 8}));
  Rng rng(11);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.03 * static_cast<double>(i)) + 0.01 * rng.normal();
  }
  const double eb = 1e-4;
  const PipelineConfig config = PipelineConfig::defaults(3);

  // 25 rows in 4 chunks: deliberately uneven slabs.
  const auto expected = serial_reference_frame(data, eb, config, nullptr, 4);

  ChunkedScratch scratch;
  ChunkedOptions opts;
  opts.chunks = 4;
  opts.scratch = &scratch;
  EXPECT_EQ(chunked_compress(data, eb, config, nullptr, opts), expected);

  const auto recon = chunked_decompress_f64(expected, &scratch);
  EXPECT_LE(max_abs_err(data, recon), eb);
}

TEST(ContextPool, ConcurrentChunkedCallsWithPrivateScratches) {
  const auto field = make_field(24, 12, 10, 21);
  const double eb = 1e-3;
  const PipelineConfig config = PipelineConfig::defaults(3);
  const auto reference =
      serial_reference_frame(field.data, eb, config, &field.mask, 4);

  constexpr int kCallers = 4;
  std::array<std::vector<std::uint8_t>, kCallers> results;
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      // One scratch per caller (the documented ownership rule), reused
      // across that caller's repeated calls.
      ChunkedScratch scratch;
      ChunkedOptions opts;
      opts.chunks = 4;
      opts.scratch = &scratch;
      for (int round = 0; round < 3; ++round) {
        chunked_compress_into(field.data, eb, config, &field.mask, opts,
                              results[static_cast<std::size_t>(t)]);
      }
    });
  }
  for (auto& c : callers) c.join();
  for (const auto& r : results) EXPECT_EQ(r, reference);
}

}  // namespace
}  // namespace cliz
