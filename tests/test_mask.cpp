#include "src/core/mask.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"

namespace cliz {
namespace {

TEST(Mask, AllValid) {
  const auto m = MaskMap::all_valid(Shape({4, 5}));
  EXPECT_EQ(m.count_valid(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_TRUE(m.valid(i));
}

TEST(Mask, FromFillValuesDetectsHugeAndNonFinite) {
  NdArray<float> data(Shape({6}));
  data[0] = 1.0f;
  data[1] = 9.96921e36f;
  data[2] = -5.0f;
  data[3] = std::numeric_limits<float>::infinity();
  data[4] = std::numeric_limits<float>::quiet_NaN();
  data[5] = 1e29f;  // large but physical by default threshold
  const auto m = MaskMap::from_fill_values(data);
  EXPECT_TRUE(m.valid(0));
  EXPECT_FALSE(m.valid(1));
  EXPECT_TRUE(m.valid(2));
  EXPECT_FALSE(m.valid(3));
  EXPECT_FALSE(m.valid(4));
  EXPECT_TRUE(m.valid(5));
}

TEST(Mask, FromRegionMapZeroIsInvalid) {
  NdArray<std::int32_t> regions(Shape({5}));
  regions[0] = 0;
  regions[1] = 3;   // ocean basin id
  regions[2] = -2;  // inland water body
  regions[3] = 0;
  regions[4] = 1;
  const auto m = MaskMap::from_region_map(regions);
  EXPECT_FALSE(m.valid(0));
  EXPECT_TRUE(m.valid(1));
  EXPECT_TRUE(m.valid(2));
  EXPECT_FALSE(m.valid(3));
  EXPECT_TRUE(m.valid(4));
}

TEST(Mask, BroadcastTilesSpatialMask) {
  auto spatial = MaskMap::all_valid(Shape({2, 3}));
  spatial.mutable_data()[4] = 0;  // (1, 1)
  const auto full = MaskMap::broadcast(spatial, Shape({4, 2, 3}));
  EXPECT_EQ(full.count_valid(), 4u * 5u);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_FALSE(full.valid(t * 6 + 4));
    EXPECT_TRUE(full.valid(t * 6 + 3));
  }
}

TEST(Mask, BroadcastRejectsMismatchedSizes) {
  const auto spatial = MaskMap::all_valid(Shape({7}));
  EXPECT_THROW((void)MaskMap::broadcast(spatial, Shape({3, 5})), Error);
}

TEST(Mask, RleRoundTripRandom) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed);
    auto m = MaskMap::all_valid(Shape({37, 23}));
    for (std::size_t i = 0; i < m.size(); ++i) {
      // Blocky randomness: realistic masks have long runs.
      m.mutable_data()[i] = rng.uniform() < 0.5 ? m.valid(i > 0 ? i - 1 : 0)
                                                : (rng.uniform() < 0.5 ? 1 : 0);
    }
    ByteWriter w;
    m.serialize(w);
    ByteReader r(w.bytes());
    const auto back = MaskMap::deserialize(r);
    EXPECT_EQ(back.shape(), m.shape());
    for (std::size_t i = 0; i < m.size(); ++i) {
      ASSERT_EQ(back.valid(i), m.valid(i)) << "seed " << seed << " i " << i;
    }
  }
}

TEST(Mask, RleRoundTripUniformMasks) {
  for (const std::uint8_t fill : {std::uint8_t{0}, std::uint8_t{1}}) {
    auto m = MaskMap::all_valid(Shape({100}));
    for (std::size_t i = 0; i < m.size(); ++i) m.mutable_data()[i] = fill;
    ByteWriter w;
    m.serialize(w);
    ByteReader r(w.bytes());
    const auto back = MaskMap::deserialize(r);
    for (std::size_t i = 0; i < m.size(); ++i) {
      EXPECT_EQ(back.valid(i), fill != 0);
    }
  }
}

TEST(Mask, RleIsCompactForCoherentMasks) {
  auto m = MaskMap::all_valid(Shape({1000, 100}));
  for (std::size_t i = 0; i < 50000; ++i) m.mutable_data()[i] = 0;
  ByteWriter w;
  m.serialize(w);
  EXPECT_LT(w.size(), 64u);  // two runs -> a handful of varints
}

TEST(Mask, DeserializeRejectsBadRuns) {
  ByteWriter w;
  w.put_varint(1);
  w.put_varint(10);  // shape (10)
  w.put_u8(1);
  w.put_varint(20);  // run longer than the shape
  w.put_varint(0);
  ByteReader r(w.bytes());
  EXPECT_THROW((void)MaskMap::deserialize(r), Error);
}

TEST(Mask, DeserializeRejectsShortRuns) {
  ByteWriter w;
  w.put_varint(1);
  w.put_varint(10);
  w.put_u8(1);
  w.put_varint(4);  // only covers 4 of 10
  w.put_varint(0);
  ByteReader r(w.bytes());
  EXPECT_THROW((void)MaskMap::deserialize(r), Error);
}

TEST(Mask, CropExtractsRegion) {
  auto m = MaskMap::all_valid(Shape({6, 8}));
  m.mutable_data()[1 * 8 + 2] = 0;
  m.mutable_data()[2 * 8 + 3] = 0;
  const DimVec start{1, 2};
  const auto sub = m.crop(start, Shape({2, 3}));
  // sub(0,0) = m(1,2) = 0; sub(1,1) = m(2,3) = 0; others 1.
  EXPECT_FALSE(sub.valid(0));
  EXPECT_TRUE(sub.valid(1));
  EXPECT_FALSE(sub.valid(1 * 3 + 1));
  EXPECT_EQ(sub.count_valid(), 4u);
}

TEST(Mask, CropOutOfRangeThrows) {
  const auto m = MaskMap::all_valid(Shape({4, 4}));
  const DimVec start{3, 0};
  EXPECT_THROW((void)m.crop(start, Shape({2, 2})), Error);
}

}  // namespace
}  // namespace cliz
