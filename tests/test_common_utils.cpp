#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/common/timer.hpp"
#include "src/common/version.hpp"

namespace cliz {
namespace {

TEST(Version, IsSemver) {
  const std::string v = version();
  int dots = 0;
  for (const char c : v) {
    if (c == '.') {
      ++dots;
    } else {
      ASSERT_TRUE(c >= '0' && c <= '9') << v;
    }
  }
  EXPECT_EQ(dots, 2);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Parallel, HardwareThreadsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

TEST(Parallel, ForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoOp) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Parallel, SubrangeRespected) {
  std::vector<int> hits(10, 0);
  parallel_for(3, 7, [&](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(hits[i], i >= 3 && i < 7 ? 1 : 0);
  }
}

}  // namespace
}  // namespace cliz
