#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/crc32c.hpp"
#include "src/common/parallel.hpp"
#include "src/common/timer.hpp"
#include "src/common/version.hpp"

namespace cliz {
namespace {

TEST(Version, IsSemver) {
  const std::string v = version();
  int dots = 0;
  for (const char c : v) {
    if (c == '.') {
      ++dots;
    } else {
      ASSERT_TRUE(c >= '0' && c <= '9') << v;
    }
  }
  EXPECT_EQ(dots, 2);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Parallel, HardwareThreadsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

TEST(Parallel, ForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoOp) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Parallel, SubrangeRespected) {
  std::vector<int> hits(10, 0);
  parallel_for(3, 7, [&](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(hits[i], i >= 3 && i < 7 ? 1 : 0);
  }
}

std::vector<std::uint8_t> ascii(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s),
          reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s)};
}

TEST(Crc32c, Rfc3720TestVectors) {
  // iSCSI standard vectors (RFC 3720 B.4).
  const std::vector<std::uint8_t> zeros(32, 0x00);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  const std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
  std::vector<std::uint8_t> inc(32);
  for (std::size_t i = 0; i < 32; ++i) inc[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(crc32c(inc), 0x46DD794Eu);
  std::vector<std::uint8_t> dec(32);
  for (std::size_t i = 0; i < 32; ++i) {
    dec[i] = static_cast<std::uint8_t>(31 - i);
  }
  EXPECT_EQ(crc32c(dec), 0x113FDB5Cu);
  EXPECT_EQ(crc32c(ascii("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c({}), 0x00000000u);
}

TEST(Crc32c, ExtendComposes) {
  const auto whole = ascii("the quick brown fox jumps over the lazy dog!");
  const std::uint32_t full = crc32c(whole);
  // Every split point of the message must compose to the same digest.
  for (std::size_t cut = 0; cut <= whole.size(); ++cut) {
    const std::span<const std::uint8_t> head(whole.data(), cut);
    const std::span<const std::uint8_t> tail(whole.data() + cut,
                                             whole.size() - cut);
    EXPECT_EQ(crc32c_extend(crc32c(head), tail), full) << cut;
  }
}

TEST(Crc32c, SoftwareKernelMatchesDispatch) {
  // The dispatched digest (hardware where available) must agree with the
  // portable slice-by-8 kernel on every length and alignment, so streams
  // written on SSE4.2 machines verify everywhere else.
  std::vector<std::uint8_t> buf(300);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (auto& b : buf) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  for (std::size_t off = 0; off < 9; ++off) {
    for (std::size_t len = 0; len + off <= buf.size(); len += 7) {
      const std::span<const std::uint8_t> s(buf.data() + off, len);
      const std::uint32_t sw =
          ~detail_crc32c::update_sw(~0u, s.data(), s.size());
      EXPECT_EQ(crc32c(s), sw) << "off=" << off << " len=" << len;
    }
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  auto msg = ascii("climate archives cross the WAN");
  const std::uint32_t clean = crc32c(msg);
  for (std::size_t byte = 0; byte < msg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      msg[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32c(msg), clean) << byte << ":" << bit;
      msg[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace cliz
