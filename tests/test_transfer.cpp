#include "src/transfer/globus_sim.hpp"

#include <gtest/gtest.h>

#include "src/common/status.hpp"

namespace cliz {
namespace {

TransferPlan base_plan() {
  TransferPlan p;
  p.cores = 256;
  p.n_files = 1024;
  p.compress_seconds_per_file = 2.0;
  p.compressed_bytes_per_file = 64ull << 20;  // 64 MiB
  return p;
}

TEST(Transfer, CompressionMakespanIsWaveCount) {
  auto p = base_plan();
  const auto out = simulate_transfer(p);
  // 1024 files on 256 cores = 4 waves of 2 s.
  EXPECT_DOUBLE_EQ(out.compress_seconds, 8.0);
}

TEST(Transfer, MoreCoresShortenCompression) {
  auto p = base_plan();
  const auto c256 = simulate_transfer(p);
  p.cores = 512;
  const auto c512 = simulate_transfer(p);
  p.cores = 1024;
  const auto c1024 = simulate_transfer(p);
  EXPECT_GT(c256.compress_seconds, c512.compress_seconds);
  EXPECT_GT(c512.compress_seconds, c1024.compress_seconds);
  // Transfer is independent of the compressing core count.
  EXPECT_DOUBLE_EQ(c256.transfer_seconds, c1024.transfer_seconds);
}

TEST(Transfer, SmallerFilesTransferFaster) {
  auto p = base_plan();
  const auto big = simulate_transfer(p);
  p.compressed_bytes_per_file /= 4;
  const auto small = simulate_transfer(p);
  EXPECT_LT(small.transfer_seconds, big.transfer_seconds);
  EXPECT_LT(small.total_seconds(), big.total_seconds());
}

TEST(Transfer, AggregateBandwidthCapsParallelStreams) {
  auto p = base_plan();
  WanLink narrow;
  narrow.aggregate_bandwidth_mbps = 100.0;
  WanLink wide;
  wide.aggregate_bandwidth_mbps = 10000.0;
  const auto slow = simulate_transfer(p, narrow);
  const auto fast = simulate_transfer(p, wide);
  EXPECT_GT(slow.transfer_seconds, fast.transfer_seconds);
}

TEST(Transfer, PerFileOverheadMatters) {
  auto p = base_plan();
  p.compressed_bytes_per_file = 1024;  // tiny files: overhead-dominated
  WanLink cheap;
  cheap.per_file_overhead_s = 0.0;
  WanLink pricey;
  pricey.per_file_overhead_s = 1.0;
  const auto a = simulate_transfer(p, cheap);
  const auto b = simulate_transfer(p, pricey);
  EXPECT_GT(b.transfer_seconds, a.transfer_seconds + 10.0);
}

TEST(Transfer, SingleFileSingleCore) {
  TransferPlan p;
  p.cores = 1;
  p.n_files = 1;
  p.compress_seconds_per_file = 3.0;
  p.compressed_bytes_per_file = 10ull << 20;
  const auto out = simulate_transfer(p);
  EXPECT_DOUBLE_EQ(out.compress_seconds, 3.0);
  EXPECT_GT(out.transfer_seconds, 0.0);
  EXPECT_DOUBLE_EQ(out.total_seconds(),
                   out.compress_seconds + out.transfer_seconds);
}

TEST(Transfer, StreamCountCappedByFiles) {
  TransferPlan p;
  p.cores = 4;
  p.n_files = 2;  // fewer files than max streams
  p.compress_seconds_per_file = 0.1;
  p.compressed_bytes_per_file = 1 << 20;
  const auto out = simulate_transfer(p);
  EXPECT_GT(out.transfer_seconds, 0.0);
}

TEST(Transfer, PerfectLinkMatchesRetryFreeModel) {
  // p = 0 must reproduce the original analytical model exactly: no draws,
  // no retries, no waits.
  auto p = base_plan();
  WanLink link;
  link.per_file_failure_prob = 0.0;
  const auto out = simulate_transfer(p, link);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_EQ(out.failed_files, 0u);
  EXPECT_DOUBLE_EQ(out.retry_wait_seconds, 0.0);
  // 1024 files over 64 streams = 16 per stream; each send is overhead plus
  // 64 MiB at min(40, 1250/64) MB/s.
  const double rate = std::min(40.0, 1250.0 / 64.0);
  EXPECT_DOUBLE_EQ(out.transfer_seconds, 16.0 * (0.05 + 64.0 / rate));
}

TEST(Transfer, RetriesAreDeterministicPerSeed) {
  auto p = base_plan();
  WanLink flaky;
  flaky.per_file_failure_prob = 0.2;
  const auto a = simulate_transfer(p, flaky);
  const auto b = simulate_transfer(p, flaky);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failed_files, b.failed_files);
  EXPECT_DOUBLE_EQ(a.transfer_seconds, b.transfer_seconds);
  EXPECT_DOUBLE_EQ(a.retry_wait_seconds, b.retry_wait_seconds);
  EXPECT_GT(a.retries, 0u);  // 1024 files at 20%: retries are certain

  p.retry_seed = 0xDEADBEEFull;
  const auto c = simulate_transfer(p, flaky);
  EXPECT_NE(a.retries, c.retries);  // different draws, different schedule
}

TEST(Transfer, FlakierLinksRetryMoreAndRunLonger) {
  auto p = base_plan();
  WanLink mild;
  mild.per_file_failure_prob = 0.05;
  WanLink harsh;
  harsh.per_file_failure_prob = 0.4;
  const auto clean = simulate_transfer(p);
  const auto m = simulate_transfer(p, mild);
  const auto h = simulate_transfer(p, harsh);
  EXPECT_LT(m.retries, h.retries);
  EXPECT_LE(clean.transfer_seconds, m.transfer_seconds);
  EXPECT_LT(m.transfer_seconds, h.transfer_seconds);
}

TEST(Transfer, DeadLinkAbandonsEveryFile) {
  auto p = base_plan();
  p.n_files = 32;
  WanLink dead;
  dead.per_file_failure_prob = 1.0;
  dead.max_retries = 3;
  const auto out = simulate_transfer(p, dead);
  EXPECT_EQ(out.failed_files, 32u);
  EXPECT_EQ(out.retries, 32u * 3u);  // every file burns its full budget
  EXPECT_GT(out.retry_wait_seconds, 0.0);
}

TEST(Transfer, FatalFailuresAbandonWithoutRetry) {
  // Failures classified as non-retryable through the error taxonomy
  // (CorruptStream / LimitExceeded at the destination) must be abandoned
  // immediately — no retry budget burned, no backoff charged.
  auto p = base_plan();
  p.n_files = 32;
  WanLink poisoned;
  poisoned.per_file_failure_prob = 1.0;
  poisoned.fatal_failure_frac = 1.0;  // every failure is permanent
  poisoned.max_retries = 3;
  const auto out = simulate_transfer(p, poisoned);
  EXPECT_EQ(out.failed_files, 32u);
  EXPECT_EQ(out.fatal_failures, 32u);
  EXPECT_EQ(out.retries, 0u);  // permanent rejections never retry
  EXPECT_DOUBLE_EQ(out.retry_wait_seconds, 0.0);
}

TEST(Transfer, MixedFatalFractionSplitsFailures) {
  auto p = base_plan();
  WanLink flaky;
  flaky.per_file_failure_prob = 0.3;
  flaky.fatal_failure_frac = 0.5;
  const auto out = simulate_transfer(p, flaky);
  // Both classes appear, fatal failures are a subset of failed files, and
  // the schedule stays deterministic per seed.
  EXPECT_GT(out.fatal_failures, 0u);
  EXPECT_GT(out.retries, 0u);
  EXPECT_LE(out.fatal_failures, out.failed_files);
  const auto again = simulate_transfer(p, flaky);
  EXPECT_EQ(out.fatal_failures, again.fatal_failures);
  EXPECT_EQ(out.retries, again.retries);
  EXPECT_DOUBLE_EQ(out.transfer_seconds, again.transfer_seconds);
}

TEST(Transfer, ZeroFatalFractionPreservesLegacySchedule) {
  // fatal_failure_frac = 0 must consume no extra randomness: the retry
  // schedule of an existing (plan, link, seed) triple replays unchanged.
  auto p = base_plan();
  WanLink flaky;
  flaky.per_file_failure_prob = 0.2;
  const auto legacy = simulate_transfer(p, flaky);
  WanLink same = flaky;
  same.fatal_failure_frac = 0.0;
  const auto out = simulate_transfer(p, same);
  EXPECT_EQ(out.retries, legacy.retries);
  EXPECT_EQ(out.fatal_failures, 0u);
  EXPECT_DOUBLE_EQ(out.transfer_seconds, legacy.transfer_seconds);
}

TEST(Transfer, InvalidFatalFractionThrows) {
  WanLink bad;
  bad.per_file_failure_prob = 0.5;
  bad.fatal_failure_frac = 1.5;
  EXPECT_THROW((void)simulate_transfer(base_plan(), bad), Error);
  bad.fatal_failure_frac = -0.1;
  EXPECT_THROW((void)simulate_transfer(base_plan(), bad), Error);
}

TEST(Transfer, BackoffIsCappedExponential) {
  TransferPlan p;
  p.cores = 1;
  p.n_files = 1;
  p.compressed_bytes_per_file = 1 << 20;
  WanLink dead;
  dead.per_file_failure_prob = 1.0;
  dead.max_retries = 6;
  dead.initial_backoff_s = 1.0;
  dead.max_backoff_s = 8.0;
  const auto out = simulate_transfer(p, dead);
  // Waits: 1 + 2 + 4 + 8 + 8 + 8 (doubling, clamped at the cap).
  EXPECT_DOUBLE_EQ(out.retry_wait_seconds, 31.0);
  EXPECT_EQ(out.failed_files, 1u);
}

TEST(Transfer, InvalidFailureProbabilityThrows) {
  WanLink bad;
  bad.per_file_failure_prob = 1.5;
  EXPECT_THROW((void)simulate_transfer(base_plan(), bad), Error);
  bad.per_file_failure_prob = -0.1;
  EXPECT_THROW((void)simulate_transfer(base_plan(), bad), Error);
}

TEST(Transfer, InvalidPlansThrow) {
  TransferPlan p = base_plan();
  p.cores = 0;
  EXPECT_THROW((void)simulate_transfer(p), Error);
  p = base_plan();
  p.n_files = 0;
  EXPECT_THROW((void)simulate_transfer(p), Error);
  WanLink bad;
  bad.aggregate_bandwidth_mbps = 0.0;
  EXPECT_THROW((void)simulate_transfer(base_plan(), bad), Error);
}

}  // namespace
}  // namespace cliz
