// Failure-injection / fuzz-style robustness tests: every decoder in the
// library must either produce output or throw cliz::Error (or bad_alloc)
// on arbitrary garbage, truncations, and bit flips of valid streams —
// never crash, hang, or read out of bounds. Deterministic seeds keep the
// suite reproducible.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/cliz.hpp"
#include "src/core/compressor.hpp"
#include "src/huffman/huffman.hpp"
#include "src/lossless/lossless.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

/// Runs a decoder on hostile input; anything but an exception-or-success
/// outcome (i.e. a crash) fails the whole test binary, which is the point.
template <typename Fn>
void expect_no_crash(Fn&& fn) {
  try {
    fn();
  } catch (const Error&) {
    // fine: detected corruption
  } catch (const std::bad_alloc&) {
    // fine: corrupt header demanded an absurd (but bounded) allocation
  }
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

NdArray<float> sample_data() {
  const Shape shape({16, 12, 10});
  NdArray<float> a(shape);
  Rng rng(77);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(std::sin(0.1 * static_cast<double>(i)) +
                              0.01 * rng.normal());
  }
  return a;
}

class FuzzCodec : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzCodec, RandomGarbageNeverCrashes) {
  auto comp = make_compressor(GetParam());
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const auto garbage = random_bytes(8 + seed * 37, 1000 + seed);
    expect_no_crash([&] { (void)comp->decompress(garbage); });
  }
}

TEST_P(FuzzCodec, TruncationsNeverCrash) {
  auto comp = make_compressor(GetParam());
  const auto data = sample_data();
  const auto stream = comp->compress(data, 1e-3);
  for (std::size_t cut = 0; cut < stream.size();
       cut += std::max<std::size_t>(1, stream.size() / 50)) {
    std::vector<std::uint8_t> truncated(stream.begin(),
                                        stream.begin() +
                                            static_cast<std::ptrdiff_t>(cut));
    expect_no_crash([&] { (void)comp->decompress(truncated); });
  }
}

TEST_P(FuzzCodec, BitFlipsNeverCrash) {
  auto comp = make_compressor(GetParam());
  const auto data = sample_data();
  const auto stream = comp->compress(data, 1e-3);
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = stream;
    const int flips = 1 + static_cast<int>(rng.uniform_index(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = rng.uniform_index(mutated.size());
      mutated[byte] ^= static_cast<std::uint8_t>(
          1u << rng.uniform_index(8));
    }
    expect_no_crash([&] { (void)comp->decompress(mutated); });
  }
}

INSTANTIATE_TEST_SUITE_P(All, FuzzCodec,
                         ::testing::Values("cliz", "sz3", "qoz", "zfp",
                                           "sperr", "sz2"));

TEST(FuzzClizFeatureful, MutationsOfMaskedPeriodicClassifiedStream) {
  // The richest stream layout: mask + template + classification + dynamic
  // fitting. Bit flips must never crash the decoder.
  const Shape shape({24, 10, 12});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(5);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 11 == 0) {
      mask.mutable_data()[i] = 0;
      data[i] = 9.96921e36f;
    } else {
      data[i] = static_cast<float>(
          std::cos(2.0 * std::numbers::pi *
                   static_cast<double>(i / 120) / 12.0) +
          0.01 * rng.normal());
    }
  }
  PipelineConfig config = PipelineConfig::defaults(3);
  config.period = 12;
  config.classify_bins = true;
  const auto stream = ClizCompressor(config).compress(data, 1e-3, &mask);

  Rng mutator(6);
  for (int trial = 0; trial < 120; ++trial) {
    auto mutated = stream;
    const std::size_t byte = mutator.uniform_index(mutated.size());
    mutated[byte] ^= static_cast<std::uint8_t>(
        1u << mutator.uniform_index(8));
    expect_no_crash([&] { (void)ClizCompressor::decompress(mutated); });
  }
}

TEST(FuzzClizHeader, RejectsOutOfRangeQuantizerRadius) {
  // Regression: the radius used to flow unvalidated from the header varint
  // into the escape-symbol arithmetic (2*radius + 2j + 2), where a hostile
  // value overflows uint32. The decoder must reject it at parse time.
  for (const std::uint64_t radius :
       {std::uint64_t{0}, std::uint64_t{1}, (std::uint64_t{1} << 30) + 1,
        std::uint64_t{1} << 40, std::uint64_t{0xFFFFFFFF}}) {
    ByteWriter w;
    w.put(std::uint32_t{0x434C495Au});  // magic
    w.put_u8(4);                        // float32
    w.put_varint(3);                    // ndims
    w.put_varint(4);
    w.put_varint(4);
    w.put_varint(4);
    w.put(1e-3);          // error bound
    w.put_varint(radius); // the hostile field — parsing must stop here
    const auto stream = lossless_compress(w.bytes());
    EXPECT_THROW((void)ClizCompressor::decompress(stream), Error)
        << "radius " << radius;
  }
}

TEST(FuzzLossless, GarbageAndMutations) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    expect_no_crash([&] {
      (void)lossless_decompress(random_bytes(3 + seed * 13, seed));
    });
  }
  const auto payload = random_bytes(5000, 99);
  const auto stream = lossless_compress(payload);
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = stream;
    mutated[rng.uniform_index(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    expect_no_crash([&] { (void)lossless_decompress(mutated); });
  }
}

TEST(FuzzHuffman, GarbageTablesAndStreams) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    expect_no_crash([&] {
      auto bytes = random_bytes(2 + seed * 7, 200 + seed);
      ByteReader r(bytes);
      const auto codec = HuffmanCodec::deserialize(r);
      auto payload = random_bytes(64, 300 + seed);
      BitReader bits(payload);
      for (int i = 0; i < 100; ++i) (void)codec.decode_one(bits);
    });
  }
}

TEST(FuzzMask, GarbageRle) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    expect_no_crash([&] {
      auto bytes = random_bytes(4 + seed * 11, 400 + seed);
      ByteReader r(bytes);
      (void)MaskMap::deserialize(r);
    });
  }
}

TEST(FuzzCrossCodec, StreamsFedToWrongDecoder) {
  // Every codec's stream handed to every other codec's decoder must be
  // rejected cleanly (magic mismatch), and detect_codec must name the
  // right one.
  const auto data = sample_data();
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> streams;
  for (const auto& name : compressor_names()) {
    streams.emplace_back(name,
                         make_compressor(name)->compress(data, 1e-2));
  }
  for (const auto& [name, stream] : streams) {
    EXPECT_EQ(detect_codec(stream), name);
    for (const auto& other : compressor_names()) {
      if (other == name) continue;
      auto comp = make_compressor(other);
      EXPECT_THROW((void)comp->decompress(stream), Error)
          << name << " stream into " << other;
    }
  }
}

}  // namespace
}  // namespace cliz
