// Failure-injection / fuzz-style robustness tests: every decoder in the
// library must either produce output or throw cliz::Error (or bad_alloc)
// on arbitrary garbage, truncations, and bit flips of valid streams —
// never crash, hang, or read out of bounds. Deterministic seeds keep the
// suite reproducible.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "src/common/bytestream.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/chunked.hpp"
#include "src/core/cliz.hpp"
#include "src/core/compressor.hpp"
#include "src/huffman/huffman.hpp"
#include "src/io/archive.hpp"
#include "src/lossless/lossless.hpp"
#include "src/metrics/metrics.hpp"
#include "tests/fault_injection.hpp"

namespace cliz {
namespace {

/// Runs a decoder on hostile input; anything but an exception-or-success
/// outcome (i.e. a crash) fails the whole test binary, which is the point.
template <typename Fn>
void expect_no_crash(Fn&& fn) {
  try {
    fn();
  } catch (const Error&) {
    // fine: detected corruption
  } catch (const std::bad_alloc&) {
    // fine: corrupt header demanded an absurd (but bounded) allocation
  }
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

NdArray<float> sample_data() {
  const Shape shape({16, 12, 10});
  NdArray<float> a(shape);
  Rng rng(77);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(std::sin(0.1 * static_cast<double>(i)) +
                              0.01 * rng.normal());
  }
  return a;
}

class FuzzCodec : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzCodec, RandomGarbageNeverCrashes) {
  auto comp = make_compressor(GetParam());
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const auto garbage = random_bytes(8 + seed * 37, 1000 + seed);
    expect_no_crash([&] { (void)comp->decompress(garbage); });
  }
}

TEST_P(FuzzCodec, TruncationsNeverCrash) {
  auto comp = make_compressor(GetParam());
  const auto data = sample_data();
  const auto stream = comp->compress(data, 1e-3);
  for (std::size_t cut = 0; cut < stream.size();
       cut += std::max<std::size_t>(1, stream.size() / 50)) {
    std::vector<std::uint8_t> truncated(stream.begin(),
                                        stream.begin() +
                                            static_cast<std::ptrdiff_t>(cut));
    expect_no_crash([&] { (void)comp->decompress(truncated); });
  }
}

TEST_P(FuzzCodec, BitFlipsNeverCrash) {
  auto comp = make_compressor(GetParam());
  const auto data = sample_data();
  const auto stream = comp->compress(data, 1e-3);
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = stream;
    const int flips = 1 + static_cast<int>(rng.uniform_index(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = rng.uniform_index(mutated.size());
      mutated[byte] ^= static_cast<std::uint8_t>(
          1u << rng.uniform_index(8));
    }
    expect_no_crash([&] { (void)comp->decompress(mutated); });
  }
}

INSTANTIATE_TEST_SUITE_P(All, FuzzCodec,
                         ::testing::Values("cliz", "sz3", "qoz", "zfp",
                                           "sperr", "sz2"));

TEST(FuzzClizFeatureful, MutationsOfMaskedPeriodicClassifiedStream) {
  // The richest stream layout: mask + template + classification + dynamic
  // fitting. Bit flips must never crash the decoder.
  const Shape shape({24, 10, 12});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(5);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 11 == 0) {
      mask.mutable_data()[i] = 0;
      data[i] = 9.96921e36f;
    } else {
      data[i] = static_cast<float>(
          std::cos(2.0 * std::numbers::pi *
                   static_cast<double>(i / 120) / 12.0) +
          0.01 * rng.normal());
    }
  }
  PipelineConfig config = PipelineConfig::defaults(3);
  config.period = 12;
  config.classify_bins = true;
  const auto stream = ClizCompressor(config).compress(data, 1e-3, &mask);

  Rng mutator(6);
  for (int trial = 0; trial < 120; ++trial) {
    auto mutated = stream;
    const std::size_t byte = mutator.uniform_index(mutated.size());
    mutated[byte] ^= static_cast<std::uint8_t>(
        1u << mutator.uniform_index(8));
    expect_no_crash([&] { (void)ClizCompressor::decompress(mutated); });
  }
}

TEST(FuzzClizHeader, RejectsOutOfRangeQuantizerRadius) {
  // Regression: the radius used to flow unvalidated from the header varint
  // into the escape-symbol arithmetic (2*radius + 2j + 2), where a hostile
  // value overflows uint32. The decoder must reject it at parse time.
  for (const std::uint64_t radius :
       {std::uint64_t{0}, std::uint64_t{1}, (std::uint64_t{1} << 30) + 1,
        std::uint64_t{1} << 40, std::uint64_t{0xFFFFFFFF}}) {
    ByteWriter w;
    w.put(std::uint32_t{0x434C495Au});  // magic
    w.put_u8(4);                        // float32
    w.put_varint(3);                    // ndims
    w.put_varint(4);
    w.put_varint(4);
    w.put_varint(4);
    w.put(1e-3);          // error bound
    w.put_varint(radius); // the hostile field — parsing must stop here
    const auto stream = lossless_compress(w.bytes());
    EXPECT_THROW((void)ClizCompressor::decompress(stream), Error)
        << "radius " << radius;
  }
}

TEST(FuzzClizHeader, RejectsUnknownEntropyBackendId) {
  // The entropy byte carries (backend_id << 1) | classified. Locate it as
  // the first byte where Huffman and tANS compressions of the same input
  // diverge, then sweep hostile ids through it: each must be rejected with
  // a clean Error (never a crash, never garbage output).
  const auto data = sample_data();
  ClizOptions tans_opts;
  tans_opts.entropy = EntropyBackend::kTans;
  const auto huffman_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(3)).compress(data, 1e-3));
  const auto tans_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(3), tans_opts)
          .compress(data, 1e-3));
  const std::size_t pos = fault::first_divergence(huffman_raw, tans_raw);
  ASSERT_LT(pos, huffman_raw.size());
  ASSERT_EQ(huffman_raw[pos], 0u);  // (huffman id << 1) | unclassified

  for (const std::uint8_t id : {2, 3, 7, 63, 127}) {
    auto mutated = huffman_raw;
    mutated[pos] = static_cast<std::uint8_t>(id << 1);
    const auto stream = lossless_compress(mutated);
    EXPECT_THROW((void)ClizCompressor::decompress(stream), Error)
        << "backend id " << static_cast<int>(id);
  }
}

TEST(FuzzClizHeader, RejectsUnknownPredictorBackendId) {
  // The predictor byte carries (backend_id << 1) | has_mask. Locate it as
  // the first byte where interp and lorenzo1 compressions of the same input
  // diverge, then drive every reserved id through byte_override_cases: each
  // must be rejected with a clean Error before any prediction state is
  // touched.
  const auto data = sample_data();
  ClizOptions lorenzo_opts;
  lorenzo_opts.predictor = PredictorBackend::kLorenzo1;
  const auto interp_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(3)).compress(data, 1e-3));
  const auto lorenzo_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(3), lorenzo_opts)
          .compress(data, 1e-3));
  const std::size_t pos = fault::first_divergence(interp_raw, lorenzo_raw);
  ASSERT_LT(pos, interp_raw.size());
  ASSERT_EQ(interp_raw[pos], 0u);   // (interp id << 1) | no mask
  ASSERT_EQ(lorenzo_raw[pos], 2u);  // (lorenzo1 id << 1) | no mask

  // Hostile ids 4.. shifted into wire position, with and without the mask
  // bit set (the mask bit must not rescue an unknown id).
  std::vector<std::uint8_t> hostile;
  for (const std::uint8_t id : {4, 5, 7, 63, 127}) {
    hostile.push_back(static_cast<std::uint8_t>(id << 1));
    hostile.push_back(static_cast<std::uint8_t>((id << 1) | 1));
  }
  for (const auto& fault : fault::byte_override_cases(interp_raw, pos,
                                                      hostile)) {
    const auto stream = lossless_compress(fault.bytes);
    EXPECT_THROW((void)ClizCompressor::decompress(stream), Error)
        << fault.label;
  }
}

TEST(FuzzClizHeader, RejectsUnknownFramingLayoutId) {
  // Bit 7 of the entropy byte selects the per-pass framed container, whose
  // first byte is a layout id (currently only 1 is assigned). Locate the
  // entropy byte by diffing a framed against a serial compression, then
  // drive every reserved layout value through byte_override_cases: each
  // must reject with a clean Error before any offset is trusted — never an
  // OOB read, never garbage output.
  const auto data = sample_data();
  ClizOptions framed_opts;
  framed_opts.frame_passes = true;
  const auto serial_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(3)).compress(data, 1e-3));
  const auto framed_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(3), framed_opts)
          .compress(data, 1e-3));
  const std::size_t pos = fault::first_divergence(serial_raw, framed_raw);
  ASSERT_LT(pos, serial_raw.size());
  ASSERT_EQ(serial_raw[pos], 0u);     // (huffman id << 1) | unclassified
  ASSERT_EQ(framed_raw[pos], 0x80u);  // framed bit set
  ASSERT_EQ(framed_raw[pos + 1], 1u); // framing layout id

  const std::uint8_t layouts[] = {0, 2, 3, 16, 0x7F, 0x80, 0xFF};
  for (const auto& fault :
       fault::byte_override_cases(framed_raw, pos + 1, layouts)) {
    const auto stream = lossless_compress(fault.bytes);
    EXPECT_THROW((void)ClizCompressor::decompress(stream), Error)
        << fault.label;
  }
}

TEST(FuzzClizHeader, RejectsHostileFramingOffsetTable) {
  // Parse the real framed offset table, then re-splice it with hostile
  // (n_syms, n_bytes) entries: counts that under/over-cover the code
  // stream, byte lengths past the payload, and compensating shifts that
  // make segments overlap while the totals still add up. Structural
  // violations must be clean Errors; the in-bounds overlap may decode to
  // garbage but must never crash or read out of bounds.
  const auto data = sample_data();
  ClizOptions framed_opts;
  framed_opts.frame_passes = true;
  const auto serial_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(3)).compress(data, 1e-3));
  const auto framed_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(3), framed_opts)
          .compress(data, 1e-3));
  const std::size_t pos = fault::first_divergence(serial_raw, framed_raw);
  ASSERT_LT(pos + 1, framed_raw.size());
  ASSERT_EQ(framed_raw[pos + 1], 1u);  // layout id

  // Decode the genuine table (LEB128 varints) so the hostile rewrites
  // splice at exactly the right byte range.
  std::size_t cursor = pos + 2;
  const auto read_varint = [&]() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const std::uint8_t b = framed_raw.at(cursor++);
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) return v;
      shift += 7;
    }
  };
  const std::uint64_t n_segments = read_varint();
  ASSERT_GE(n_segments, 1u);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> segs;
  for (std::uint64_t s = 0; s < n_segments; ++s) {
    const std::uint64_t n_syms = read_varint();
    const std::uint64_t n_bytes = read_varint();
    segs.emplace_back(n_syms, n_bytes);
  }
  const std::size_t table_end = cursor;

  const auto spliced = [&](std::uint64_t count,
                           const std::vector<std::pair<std::uint64_t,
                                                       std::uint64_t>>&
                               entries) {
    ByteWriter table;
    table.put_varint(count);
    for (const auto& [n_syms, n_bytes] : entries) {
      table.put_varint(n_syms);
      table.put_varint(n_bytes);
    }
    std::vector<std::uint8_t> bytes(framed_raw.begin(),
                                    framed_raw.begin() +
                                        static_cast<std::ptrdiff_t>(pos + 2));
    bytes.insert(bytes.end(), table.bytes().begin(), table.bytes().end());
    bytes.insert(bytes.end(),
                 framed_raw.begin() +
                     static_cast<std::ptrdiff_t>(table_end),
                 framed_raw.end());
    return lossless_compress(bytes);
  };

  // Sanity: re-splicing the genuine table reproduces the stream.
  {
    const auto out = ClizCompressor::decompress(spliced(n_segments, segs));
    ASSERT_EQ(out.shape(), data.shape());
  }

  // Zero segments cannot cover the code stream.
  EXPECT_THROW((void)ClizCompressor::decompress(spliced(0, {})), Error);
  // Count past the code stream is rejected before the entries are read.
  EXPECT_THROW(
      (void)ClizCompressor::decompress(spliced(~std::uint64_t{0}, segs)),
      Error);

  auto mutated = segs;
  // Under-cover: first segment one symbol short.
  mutated[0].first -= 1;
  EXPECT_THROW(
      (void)ClizCompressor::decompress(spliced(n_segments, mutated)), Error);
  // Over-cover: one symbol past the code stream.
  mutated = segs;
  mutated[0].first += 1;
  EXPECT_THROW(
      (void)ClizCompressor::decompress(spliced(n_segments, mutated)), Error);
  // Zero-symbol segment: every segment must carry at least one code.
  mutated = segs;
  mutated[0].first = 0;
  EXPECT_THROW(
      (void)ClizCompressor::decompress(spliced(n_segments, mutated)), Error);
  // Byte length past the remaining payload.
  mutated = segs;
  mutated[0].second = framed_raw.size() + 100;
  EXPECT_THROW(
      (void)ClizCompressor::decompress(spliced(n_segments, mutated)), Error);
  // Byte sum short of the payload block.
  mutated = segs;
  mutated.back().second -= 1;
  EXPECT_THROW(
      (void)ClizCompressor::decompress(spliced(n_segments, mutated)), Error);
  // Compensating shift: totals match, so the table parses, but segment 0
  // now claims bytes belonging to segment 1 — memory-safe garbage or a
  // clean Error, never a crash.
  if (segs.size() >= 2 && segs[1].second >= 1) {
    mutated = segs;
    mutated[0].second += 1;
    mutated[1].second -= 1;
    expect_no_crash([&] {
      (void)ClizCompressor::decompress(spliced(n_segments, mutated));
    });
  }
}

TEST(FuzzLossless, GarbageAndMutations) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    expect_no_crash([&] {
      (void)lossless_decompress(random_bytes(3 + seed * 13, seed));
    });
  }
  const auto payload = random_bytes(5000, 99);
  const auto stream = lossless_compress(payload);
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = stream;
    mutated[rng.uniform_index(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    expect_no_crash([&] { (void)lossless_decompress(mutated); });
  }
}

TEST(FuzzHuffman, GarbageTablesAndStreams) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    expect_no_crash([&] {
      auto bytes = random_bytes(2 + seed * 7, 200 + seed);
      ByteReader r(bytes);
      const auto codec = HuffmanCodec::deserialize(r);
      auto payload = random_bytes(64, 300 + seed);
      BitReader bits(payload);
      for (int i = 0; i < 100; ++i) (void)codec.decode_one(bits);
    });
  }
}

TEST(FuzzMask, GarbageRle) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    expect_no_crash([&] {
      auto bytes = random_bytes(4 + seed * 11, 400 + seed);
      ByteReader r(bytes);
      (void)MaskMap::deserialize(r);
    });
  }
}

TEST(FuzzChunked, GarbageTruncationsAndBitFlips) {
  const auto data = sample_data();
  ChunkedOptions opts;
  opts.chunks = 4;
  const auto stream = chunked_compress(data, 1e-3,
                                       PipelineConfig::defaults(3), nullptr,
                                       opts);

  // One scratch shared across every hostile decode: corruption handling
  // must not poison the pooled contexts for the next (valid or invalid)
  // frame.
  ChunkedScratch scratch;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const auto garbage = random_bytes(8 + seed * 31, 2000 + seed);
    expect_no_crash([&] { (void)chunked_decompress(garbage, &scratch); });
  }
  for (std::size_t cut = 0; cut < stream.size();
       cut += std::max<std::size_t>(1, stream.size() / 50)) {
    std::vector<std::uint8_t> truncated(stream.begin(),
                                        stream.begin() +
                                            static_cast<std::ptrdiff_t>(cut));
    expect_no_crash([&] { (void)chunked_decompress(truncated, &scratch); });
  }
  Rng rng(9001);
  NdArray<float> out(data.shape());
  for (int trial = 0; trial < 80; ++trial) {
    auto mutated = stream;
    const int flips = 1 + static_cast<int>(rng.uniform_index(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.uniform_index(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    }
    expect_no_crash([&] { (void)chunked_decompress(mutated, &scratch); });
    expect_no_crash([&] { chunked_decompress_into(mutated, out, &scratch); });
  }

  // The hammered scratch still decodes the pristine frame correctly.
  const auto recon = chunked_decompress(stream, &scratch);
  ASSERT_EQ(recon.shape(), data.shape());
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
}

TEST(FuzzChunked, HostileHeaders) {
  constexpr std::uint32_t kChunkedMagic = 0x434C4B53u;  // "CLKS"
  const auto data = sample_data();  // shape {16, 12, 10}
  const auto valid_chunk = ClizCompressor(PipelineConfig::defaults(3))
                               .compress(data, 1e-3);
  ChunkedScratch scratch;

  // Each writer builds one hostile frame; every one must be rejected (or
  // at worst decode to garbage) without crashing through the pooled path.
  const auto hostile = [&](auto&& build) {
    ByteWriter w;
    w.put(kChunkedMagic);
    build(w);
    const auto frame = w.bytes();
    expect_no_crash([&] {
      (void)chunked_decompress(
          std::vector<std::uint8_t>(frame.begin(), frame.end()), &scratch);
    });
  };

  // Zero / oversized dimensionality.
  hostile([&](ByteWriter& w) { w.put_varint(0); });
  hostile([&](ByteWriter& w) { w.put_varint(9); });
  // Huge dims (allocation bombs must be caught or bounded).
  hostile([&](ByteWriter& w) {
    w.put_varint(3);
    w.put_varint(std::uint64_t{1} << 40);
    w.put_varint(std::uint64_t{1} << 40);
    w.put_varint(std::uint64_t{1} << 40);
    w.put_varint(1);
  });
  // Chunk count of zero, and more chunks than dim-0 rows.
  hostile([&](ByteWriter& w) {
    w.put_varint(3);
    for (const std::size_t d : {16, 12, 10}) w.put_varint(d);
    w.put_varint(0);
  });
  hostile([&](ByteWriter& w) {
    w.put_varint(3);
    for (const std::size_t d : {16, 12, 10}) w.put_varint(d);
    w.put_varint(17);
  });
  // Ranges that gap, overlap, invert, or overshoot dim 0.
  for (const auto& [lo, hi] : std::vector<std::pair<std::uint64_t,
                                                    std::uint64_t>>{
           {1, 16},    // gap at the front
           {0, 0},     // empty
           {4, 2},     // inverted
           {0, 99}}) {  // overshoot
    hostile([&](ByteWriter& w) {
      w.put_varint(3);
      for (const std::size_t d : {16, 12, 10}) w.put_varint(d);
      w.put_varint(1);
      w.put_varint(lo);
      w.put_varint(hi);
      w.put_block(valid_chunk);
    });
  }
  // Block length overrunning the frame.
  hostile([&](ByteWriter& w) {
    w.put_varint(3);
    for (const std::size_t d : {16, 12, 10}) w.put_varint(d);
    w.put_varint(1);
    w.put_varint(0);
    w.put_varint(16);
    w.put_varint(1 << 20);  // promised block length; no payload follows
  });
  // Well-formed header whose chunk payload is garbage.
  hostile([&](ByteWriter& w) {
    w.put_varint(3);
    for (const std::size_t d : {16, 12, 10}) w.put_varint(d);
    w.put_varint(1);
    w.put_varint(0);
    w.put_varint(16);
    w.put_block(random_bytes(200, 31337));
  });
  // Well-formed header whose (valid CliZ) chunk decodes to the wrong
  // slab geometry: frame claims rows 0..8, payload carries all 16.
  hostile([&](ByteWriter& w) {
    w.put_varint(3);
    for (const std::size_t d : {16, 12, 10}) w.put_varint(d);
    w.put_varint(2);
    w.put_varint(0);
    w.put_varint(8);
    w.put_block(valid_chunk);
    w.put_varint(8);
    w.put_varint(16);
    w.put_block(valid_chunk);
  });
}

TEST(FuzzChunked, WrongDecoderAndSampleWidth) {
  const auto data = sample_data();
  ChunkedOptions opts;
  opts.chunks = 3;
  const auto f32_frame = chunked_compress(data, 1e-3,
                                          PipelineConfig::defaults(3),
                                          nullptr, opts);
  NdArray<double> f64_data(data.shape());
  for (std::size_t i = 0; i < data.size(); ++i) {
    f64_data[i] = static_cast<double>(data[i]);
  }
  const auto f64_frame = chunked_compress(f64_data, 1e-3,
                                          PipelineConfig::defaults(3),
                                          nullptr, opts);
  EXPECT_EQ(chunked_sample_bytes(f32_frame), 4u);
  EXPECT_EQ(chunked_sample_bytes(f64_frame), 8u);

  // Sample-width mismatches are clean errors through the pooled decode.
  ChunkedScratch scratch;
  EXPECT_THROW((void)chunked_decompress(f64_frame, &scratch), Error);
  EXPECT_THROW((void)chunked_decompress_f64(f32_frame, &scratch), Error);

  // Chunked frames into plain decoders and vice versa: clean rejects.
  EXPECT_FALSE(is_chunked_stream(
      ClizCompressor(PipelineConfig::defaults(3)).compress(data, 1e-3)));
  EXPECT_THROW((void)ClizCompressor::decompress(f32_frame), Error);
  const auto plain = ClizCompressor(PipelineConfig::defaults(3))
                         .compress(data, 1e-3);
  EXPECT_THROW((void)chunked_decompress(plain, &scratch), Error);
}

// --- CLZA archive reader ------------------------------------------------

/// Dumps `bytes` to a temp path, opens it in both modes, and asserts the
/// robustness contract: strict open/read may only fail with cliz::Error;
/// tolerant open never throws on byte damage and its report stays sane
/// (recovered and quarantined names bounded by what was written).
class FuzzArchive : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-unique path: ctest -j runs each test as its own process of this
    // binary, and parallel fixtures must not clobber each other's file.
    path_ = (std::filesystem::temp_directory_path() /
             ("cliz_fuzz_archive_" + std::to_string(::getpid()) + ".clza"))
                .string();
    ArchiveWriter w(path_);
    for (int v = 0; v < 3; ++v) {
      NdArray<float> data(Shape({10, 8}));
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<float>(i % 7) * 0.25f;
      }
      w.add_variable_with("sz3", "VAR" + std::to_string(v), data, 1e-3);
    }
    w.finish();
    std::ifstream in(path_, std::ios::binary);
    pristine_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    ASSERT_GT(pristine_.size(), kTrailer);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  void probe(const std::vector<std::uint8_t>& bytes) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.is_open());
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    expect_no_crash([&] {
      ArchiveReader strict(path_);
      for (const auto& v : strict.variables()) (void)strict.read(v.name);
    });
    expect_no_crash([&] {
      ArchiveReader tol(path_, ArchiveOpenMode::kTolerant);
      EXPECT_LE(tol.salvage().recovered.size(), 3u);
      for (const auto& name : tol.salvage().recovered) {
        (void)tol.read(name);
      }
    });
  }

  /// Pristine bytes with the trailer's index offset replaced.
  std::vector<std::uint8_t> with_index_offset(std::uint64_t offset) const {
    auto bytes = pristine_;
    ByteWriter w;
    w.put(offset);
    std::copy(w.bytes().begin(), w.bytes().end(),
              bytes.end() - static_cast<std::ptrdiff_t>(kTrailer));
    return bytes;
  }

  static constexpr std::size_t kTrailer = 12;
  std::string path_;
  std::vector<std::uint8_t> pristine_;
};

TEST_F(FuzzArchive, HostileTrailerOffsets) {
  // Offsets pointing before the first record, past EOF, at the trailer
  // itself, mid-payload, and mid-index.
  for (const std::uint64_t offset :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
        std::uint64_t{pristine_.size()}, std::uint64_t{pristine_.size() - 1},
        std::uint64_t{pristine_.size() - kTrailer},
        std::uint64_t{pristine_.size() / 2}, std::uint64_t{1} << 60,
        ~std::uint64_t{0}}) {
    SCOPED_TRACE("index offset " + std::to_string(offset));
    probe(with_index_offset(offset));
  }
}

TEST_F(FuzzArchive, TruncatedIndexAndTrailer) {
  // Cut the file short at every boundary near the end: chops through the
  // trailer, then the index CRC, then the index body.
  for (std::size_t cut = 1; cut <= kTrailer + 40 && cut < pristine_.size();
       ++cut) {
    SCOPED_TRACE("truncated by " + std::to_string(cut));
    probe({pristine_.begin(),
           pristine_.end() - static_cast<std::ptrdiff_t>(cut)});
  }
}

TEST_F(FuzzArchive, OverlappingAndDuplicatedRecords) {
  // Splice the front half of the file over the back half (duplicate
  // record magics at bogus offsets), and duplicate the whole body before
  // the trailer (every record appears twice; offsets point at the first
  // copy only).
  auto overlap = pristine_;
  const std::size_t half = overlap.size() / 2;
  std::copy(overlap.begin(), overlap.begin() + static_cast<std::ptrdiff_t>(
                                                   overlap.size() - half),
            overlap.begin() + static_cast<std::ptrdiff_t>(half));
  probe(overlap);

  const std::size_t body = pristine_.size() - kTrailer;
  std::vector<std::uint8_t> doubled(pristine_.begin(),
                                    pristine_.begin() +
                                        static_cast<std::ptrdiff_t>(body));
  doubled.insert(doubled.end(), pristine_.begin(),
                 pristine_.begin() + static_cast<std::ptrdiff_t>(body));
  doubled.insert(doubled.end(),
                 pristine_.end() - static_cast<std::ptrdiff_t>(kTrailer),
                 pristine_.end());
  probe(doubled);
}

TEST_F(FuzzArchive, GarbageWithValidTrailerMagic) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    auto bytes = random_bytes(64 + seed * 53, 5000 + seed);
    // Grafting the real trailer magic on makes the scanner actually walk
    // the garbage instead of bailing at the magic check.
    ByteWriter w;
    w.put(std::uint64_t{8});
    w.put(std::uint32_t{0x434C5A41u});  // "CLZA"
    bytes.insert(bytes.end(), w.bytes().begin(), w.bytes().end());
    SCOPED_TRACE("garbage seed " + std::to_string(seed));
    probe(bytes);
  }
}

TEST(FuzzCrossCodec, StreamsFedToWrongDecoder) {
  // Every codec's stream handed to every other codec's decoder must be
  // rejected cleanly (magic mismatch), and detect_codec must name the
  // right one.
  const auto data = sample_data();
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> streams;
  for (const auto& name : compressor_names()) {
    streams.emplace_back(name,
                         make_compressor(name)->compress(data, 1e-2));
  }
  for (const auto& [name, stream] : streams) {
    EXPECT_EQ(detect_codec(stream), name);
    for (const auto& other : compressor_names()) {
      if (other == name) continue;
      auto comp = make_compressor(other);
      EXPECT_THROW((void)comp->decompress(stream), Error)
          << name << " stream into " << other;
    }
  }
}

}  // namespace
}  // namespace cliz
