#include "src/huffman/huffman.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"

namespace cliz {
namespace {

std::vector<std::uint32_t> roundtrip(const std::vector<std::uint32_t>& syms) {
  const auto codec = HuffmanCodec::from_symbols(syms);
  ByteWriter table;
  codec.serialize(table);
  BitWriter bits;
  codec.encode(syms, bits);
  const auto payload = bits.finish();

  ByteReader tr(table.bytes());
  const auto decoder = HuffmanCodec::deserialize(tr);
  BitReader br(payload);
  std::vector<std::uint32_t> out;
  out.reserve(syms.size());
  for (std::size_t i = 0; i < syms.size(); ++i) {
    out.push_back(decoder.decode_one(br));
  }
  return out;
}

TEST(Huffman, UniformAlphabetRoundTrip) {
  std::vector<std::uint32_t> syms;
  for (std::uint32_t v = 0; v < 64; ++v) {
    for (int k = 0; k < 5; ++k) syms.push_back(v);
  }
  EXPECT_EQ(roundtrip(syms), syms);
}

TEST(Huffman, SkewedDistributionRoundTrip) {
  Rng rng(5);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 20000; ++i) {
    // Geometric-ish: mostly 32768 (bin 0) with exponential tails, matching
    // real quantization-bin statistics.
    const double u = rng.uniform();
    const int mag = static_cast<int>(std::floor(-std::log2(1.0 - u) * 1.2));
    const int sign = rng.uniform() < 0.5 ? -1 : 1;
    syms.push_back(static_cast<std::uint32_t>(32768 + sign * mag));
  }
  EXPECT_EQ(roundtrip(syms), syms);
}

TEST(Huffman, SkewedCodesShorterThanRareCodes) {
  std::unordered_map<std::uint32_t, std::uint64_t> freq{
      {1, 1000}, {2, 10}, {3, 10}, {4, 1}};
  const auto codec = HuffmanCodec::from_frequencies(freq);
  const std::vector<std::uint32_t> common{1};
  const std::vector<std::uint32_t> rare{4};
  EXPECT_LT(codec.encoded_bits(common), codec.encoded_bits(rare));
}

TEST(Huffman, SingleSymbolAlphabet) {
  const std::vector<std::uint32_t> syms(100, 7);
  EXPECT_EQ(roundtrip(syms), syms);
  const auto codec = HuffmanCodec::from_symbols(syms);
  EXPECT_EQ(codec.alphabet_size(), 1u);
  // One-symbol codes still cost one bit each.
  EXPECT_EQ(codec.encoded_bits(syms), 100u);
}

TEST(Huffman, EmptyInputProducesEmptyCodec) {
  const auto codec = HuffmanCodec::from_symbols({});
  EXPECT_EQ(codec.alphabet_size(), 0u);
  BitWriter bits;
  codec.encode({}, bits);  // no-op
  EXPECT_EQ(bits.bit_count(), 0u);
}

TEST(Huffman, LargeSymbolValues) {
  std::vector<std::uint32_t> syms{0, 0xFFFFFFFFu, 0x80000000u, 0, 42,
                                  0xFFFFFFFFu};
  EXPECT_EQ(roundtrip(syms), syms);
}

TEST(Huffman, RandomAlphabetsRoundTrip) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    std::vector<std::uint32_t> syms(5000);
    const std::uint32_t alphabet = 1u << (4 + 3 * seed % 12);
    for (auto& s : syms) {
      s = static_cast<std::uint32_t>(rng.uniform_index(alphabet));
    }
    EXPECT_EQ(roundtrip(syms), syms) << "seed " << seed;
  }
}

TEST(Huffman, UnknownSymbolThrowsOnEncode) {
  const std::vector<std::uint32_t> syms{1, 2, 3};
  const auto codec = HuffmanCodec::from_symbols(syms);
  const std::vector<std::uint32_t> bad{99};
  BitWriter bits;
  EXPECT_THROW(codec.encode(bad, bits), Error);
  EXPECT_THROW((void)codec.encoded_bits(bad), Error);
}

TEST(Huffman, PayloadBitsMatchesEncodedBits) {
  Rng rng(17);
  std::vector<std::uint32_t> syms(3000);
  std::unordered_map<std::uint32_t, std::uint64_t> freq;
  for (auto& s : syms) {
    s = static_cast<std::uint32_t>(rng.uniform_index(50));
    ++freq[s];
  }
  const auto codec = HuffmanCodec::from_symbols(syms);
  EXPECT_EQ(codec.payload_bits(freq), codec.encoded_bits(syms));
}

TEST(Huffman, NearEntropyOnSkewedData) {
  // A heavily skewed stream must code close to its empirical entropy.
  std::vector<std::uint32_t> syms;
  std::unordered_map<std::uint32_t, std::uint64_t> freq;
  const std::vector<std::pair<std::uint32_t, int>> spec{
      {0, 9000}, {1, 500}, {2, 300}, {3, 150}, {4, 50}};
  for (const auto& [sym, count] : spec) {
    for (int i = 0; i < count; ++i) syms.push_back(sym);
    freq[sym] = static_cast<std::uint64_t>(count);
  }
  double entropy_bits = 0.0;
  const double total = static_cast<double>(syms.size());
  for (const auto& [sym, f] : freq) {
    const double p = static_cast<double>(f) / total;
    entropy_bits += -static_cast<double>(f) * std::log2(p);
  }
  const auto codec = HuffmanCodec::from_symbols(syms);
  const double coded = static_cast<double>(codec.encoded_bits(syms));
  // Huffman cannot beat one bit per symbol; within that floor it must sit
  // close to the entropy (redundancy < 1 bit/symbol by Huffman's theorem).
  const double floor_bits =
      std::max(entropy_bits, static_cast<double>(syms.size()));
  EXPECT_GE(coded, entropy_bits);
  EXPECT_LT(coded, floor_bits + static_cast<double>(syms.size()) * 0.25);
}

// Property: for any encodable stream, encoded_bits() must equal the bit
// count encode() actually emits — the size estimator and the emitter may
// never drift apart (the stream layout depends on the estimate). Runs over
// distributions chosen to populate every decode path: near-uniform (short
// codes, pair-table hits), geometric skew (mixed lengths), Fibonacci skew
// (codes past the 11-bit fast-table width), and a single-symbol alphabet.
TEST(Huffman, EncodedBitsMatchesEmittedBitsProperty) {
  std::vector<std::vector<std::uint32_t>> streams;

  {
    Rng rng(21);
    std::vector<std::uint32_t> syms(4096);
    for (auto& s : syms) {
      s = static_cast<std::uint32_t>(rng.uniform_index(1 << 10));
    }
    streams.push_back(std::move(syms));
  }
  {
    Rng rng(22);
    std::vector<std::uint32_t> syms(4096);
    for (auto& s : syms) {
      const double u = rng.uniform();
      const int mag = static_cast<int>(std::floor(-std::log2(1.0 - u)));
      s = static_cast<std::uint32_t>(32768 + mag);
    }
    streams.push_back(std::move(syms));
  }
  {
    // Fibonacci frequencies force code lengths well past kTableBits.
    std::vector<std::uint32_t> syms;
    std::uint64_t a = 1;
    std::uint64_t b = 1;
    for (std::uint32_t s = 0; s < 40 && b < (1ull << 40); ++s) {
      for (std::uint64_t k = 0; k < (a < 64 ? a : 64); ++k) {
        syms.push_back(s);
      }
      const std::uint64_t next = a + b;
      a = b;
      b = next;
    }
    streams.push_back(std::move(syms));
  }
  streams.emplace_back(std::vector<std::uint32_t>(257, 9u));

  for (std::size_t i = 0; i < streams.size(); ++i) {
    const auto& syms = streams[i];
    const auto codec = HuffmanCodec::from_symbols(syms);
    BitWriter bits;
    codec.encode(syms, bits);
    EXPECT_EQ(codec.encoded_bits(syms), bits.bit_count())
        << "stream " << i;

    // The batched decoder (pair-augmented fast table + wide peek) must
    // read back exactly what the bit-at-a-time decoder does.
    const auto payload = bits.finish();
    BitReader batch_reader(payload);
    std::vector<std::uint32_t> batched(syms.size());
    codec.decode_batch(batch_reader, batched.data(), batched.size());
    EXPECT_EQ(batched, syms) << "stream " << i;

    BitReader one_reader(payload);
    std::vector<std::uint32_t> singles;
    singles.reserve(syms.size());
    for (std::size_t k = 0; k < syms.size(); ++k) {
      singles.push_back(codec.decode_one(one_reader));
    }
    EXPECT_EQ(singles, batched) << "stream " << i;
  }
}

TEST(Huffman, DecodeBatchTruncatedPayloadThrows) {
  const std::vector<std::uint32_t> syms{1, 2, 3, 4, 5, 6, 7, 8};
  const auto codec = HuffmanCodec::from_symbols(syms);
  BitWriter bits;
  codec.encode(syms, bits);
  auto payload = bits.finish();
  if (!payload.empty()) payload.pop_back();
  BitReader r(payload);
  std::vector<std::uint32_t> out(syms.size());
  EXPECT_THROW(codec.decode_batch(r, out.data(), out.size()), Error);
}

TEST(Huffman, CorruptTableThrows) {
  ByteWriter w;
  w.put_varint(2);
  w.put_varint(5);
  w.put_varint(0);  // code length 0 is invalid
  w.put_varint(1);
  w.put_varint(1);
  ByteReader r(w.bytes());
  EXPECT_THROW(HuffmanCodec::deserialize(r), Error);
}

TEST(Huffman, DuplicateSymbolTableRejected) {
  // Regression (found by ASan fuzzing): a zero symbol delta after the first
  // entry means duplicate symbols, which would desynchronize the canonical
  // code assignment and overflow the fast decode table.
  ByteWriter w;
  w.put_varint(3);
  w.put_varint(5);
  w.put_varint(2);
  w.put_varint(0);  // duplicate of symbol 5
  w.put_varint(2);
  w.put_varint(1);
  w.put_varint(2);
  ByteReader r(w.bytes());
  EXPECT_THROW(HuffmanCodec::deserialize(r), Error);
}

TEST(Huffman, TruncatedPayloadThrows) {
  const std::vector<std::uint32_t> syms{1, 2, 3, 4, 5, 6, 7, 8};
  const auto codec = HuffmanCodec::from_symbols(syms);
  BitReader empty({});
  EXPECT_THROW((void)codec.decode_one(empty), Error);
}

TEST(Huffman, DecodeWithEmptyTableThrows) {
  const auto codec = HuffmanCodec::from_symbols({});
  std::vector<std::uint8_t> bytes{0xFF};
  BitReader r(bytes);
  EXPECT_THROW((void)codec.decode_one(r), Error);
}

TEST(Huffman, PathologicalSkewStaysWithinLengthCap) {
  // Fibonacci-like frequencies force maximal code lengths; the rebuild
  // loop must cap them without breaking decodability.
  std::unordered_map<std::uint32_t, std::uint64_t> freq;
  std::uint64_t a = 1;
  std::uint64_t b = 1;
  for (std::uint32_t s = 0; s < 80; ++s) {
    freq[s] = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
    if (b > (1ull << 55)) break;
  }
  const auto codec = HuffmanCodec::from_frequencies(freq);
  std::vector<std::uint32_t> syms;
  for (const auto& [sym, f] : freq) syms.push_back(sym);
  EXPECT_EQ(roundtrip(syms), syms);
}

}  // namespace
}  // namespace cliz
