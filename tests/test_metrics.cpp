#include "src/metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/metrics/report.hpp"

namespace cliz {
namespace {

TEST(Metrics, IdenticalDataHasInfinitePsnrAndZeroError) {
  std::vector<float> a{1.0f, 2.0f, 3.0f, 4.0f};
  const auto s = error_stats(a, a);
  EXPECT_EQ(s.max_abs_error, 0.0);
  EXPECT_EQ(s.rmse, 0.0);
  EXPECT_TRUE(std::isinf(s.psnr));
  EXPECT_EQ(s.count, 4u);
}

TEST(Metrics, KnownRmseAndPsnr) {
  // Original range 10, constant error 1 -> RMSE 1, PSNR = 20 log10(10) = 20.
  std::vector<float> orig{0.0f, 10.0f};
  std::vector<float> recon{1.0f, 11.0f};
  const auto s = error_stats(orig, recon);
  EXPECT_DOUBLE_EQ(s.rmse, 1.0);
  EXPECT_DOUBLE_EQ(s.value_range, 10.0);
  EXPECT_NEAR(s.psnr, 20.0, 1e-12);
}

TEST(Metrics, MaxErrorIsMaximum) {
  std::vector<float> orig{0.0f, 0.0f, 0.0f};
  std::vector<float> recon{0.1f, -0.5f, 0.2f};
  EXPECT_NEAR(error_stats(orig, recon).max_abs_error, 0.5, 1e-6);
}

TEST(Metrics, MaskExcludesInvalidPoints) {
  const Shape shape({4});
  auto mask = MaskMap::all_valid(shape);
  mask.mutable_data()[1] = 0;
  std::vector<float> orig{1.0f, 9e36f, 2.0f, 3.0f};
  std::vector<float> recon{1.0f, 0.0f, 2.0f, 3.0f};
  const auto s = error_stats(orig, recon, &mask);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.max_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(s.value_range, 2.0);
}

TEST(Metrics, MismatchedSizesThrow) {
  std::vector<float> a(3);
  std::vector<float> b(4);
  EXPECT_THROW((void)error_stats(a, b), Error);
}

TEST(Metrics, SsimOfIdenticalDataIsOne) {
  const Shape shape({32, 32});
  NdArray<float> a(shape);
  Rng rng(1);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.uniform(0.0, 10.0));
  }
  EXPECT_NEAR(mean_ssim(a, a), 1.0, 1e-9);
}

TEST(Metrics, SsimDegradesWithNoise) {
  const Shape shape({64, 64});
  NdArray<float> a(shape);
  Rng rng(2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = a.shape().coords(i);
    a[i] = static_cast<float>(std::sin(0.2 * static_cast<double>(c[0])) +
                              std::cos(0.2 * static_cast<double>(c[1])));
  }
  NdArray<float> slightly = a;
  NdArray<float> badly = a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    slightly[i] += static_cast<float>(0.01 * rng.normal());
    badly[i] += static_cast<float>(0.5 * rng.normal());
  }
  const double s_slight = mean_ssim(a, slightly);
  const double s_bad = mean_ssim(a, badly);
  EXPECT_GT(s_slight, s_bad);
  EXPECT_GT(s_slight, 0.95);
  EXPECT_LT(s_bad, 0.8);
}

TEST(Metrics, SsimSkipsMaskedWindows) {
  const Shape shape({16, 16});
  NdArray<float> a(shape);
  NdArray<float> b(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.uniform(0.0, 1.0));
    b[i] = a[i];
  }
  // Corrupt a fully-masked region: SSIM must ignore it.
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      mask.mutable_data()[r * 16 + c] = 0;
      b[r * 16 + c] = 1e9f;
    }
  }
  EXPECT_NEAR(mean_ssim(a, b, &mask, 8, 8), 1.0, 1e-9);
}

TEST(Metrics, SsimOnThreeDimensionalDataAveragesSlices) {
  const Shape shape({3, 16, 16});
  NdArray<float> a(shape);
  Rng rng(4);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  EXPECT_NEAR(mean_ssim(a, a), 1.0, 1e-9);
}

TEST(Metrics, PearsonOfIdenticalDataIsOne) {
  Rng rng(5);
  std::vector<float> a(500);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  EXPECT_NEAR(pearson_correlation(a, a), 1.0, 1e-12);
}

TEST(Metrics, PearsonInvariantToAffineTransform) {
  Rng rng(6);
  std::vector<float> a(500);
  std::vector<float> b(500);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.normal());
    b[i] = 3.0f * a[i] + 7.0f;
  }
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-6);
  for (auto& v : b) v = -v;
  EXPECT_NEAR(pearson_correlation(a, b), -1.0, 1e-6);
}

TEST(Metrics, PearsonOfIndependentNoiseNearZero) {
  Rng rng(7);
  std::vector<float> a(20000);
  std::vector<float> b(20000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.normal());
    b[i] = static_cast<float>(rng.normal());
  }
  EXPECT_NEAR(pearson_correlation(a, b), 0.0, 0.03);
}

TEST(Metrics, PearsonRespectsMask) {
  const Shape shape({4});
  auto mask = MaskMap::all_valid(shape);
  mask.mutable_data()[3] = 0;
  // Valid points perfectly correlated; the masked one would wreck it.
  std::vector<float> a{1.0f, 2.0f, 3.0f, 1e30f};
  std::vector<float> b{2.0f, 4.0f, 6.0f, -1e30f};
  EXPECT_NEAR(pearson_correlation(a, b, &mask), 1.0, 1e-9);
}

TEST(Metrics, WassersteinOfIdenticalDistributionsIsZero) {
  Rng rng(8);
  std::vector<float> a(1000);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  // A permutation has the same distribution: W1 = 0.
  std::vector<float> b(a.rbegin(), a.rend());
  EXPECT_NEAR(wasserstein_distance(a, b), 0.0, 1e-9);
}

TEST(Metrics, WassersteinOfShiftedDistributionIsTheShift) {
  Rng rng(9);
  std::vector<float> a(1000);
  std::vector<float> b(1000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.uniform(0.0, 1.0));
    b[i] = a[i] + 0.25f;
  }
  EXPECT_NEAR(wasserstein_distance(a, b), 0.25, 1e-5);
}

TEST(Metrics, BitRateAndRatio) {
  // 1000 floats -> 500 bytes: 4 bits/value, ratio 8.
  EXPECT_DOUBLE_EQ(bit_rate(1000, 500), 4.0);
  EXPECT_DOUBLE_EQ(compression_ratio(4000, 500), 8.0);
}

TEST(Metrics, ValueRangeWithMask) {
  const Shape shape({3});
  auto mask = MaskMap::all_valid(shape);
  mask.mutable_data()[2] = 0;
  std::vector<float> data{1.0f, 5.0f, 1e30f};
  EXPECT_DOUBLE_EQ(value_range(data, &mask), 4.0);
  EXPECT_DOUBLE_EQ(value_range(data, nullptr),
                   static_cast<double>(1e30f) - 1.0);
}

TEST(Report, FullReportOnPerfectReconstruction) {
  const Shape shape({8, 8});
  NdArray<float> a(shape);
  Rng rng(20);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  const auto r = quality_report(a, a, nullptr, 0.01, 100);
  EXPECT_EQ(r.stats.max_abs_error, 0.0);
  EXPECT_TRUE(r.bound_satisfied);
  EXPECT_NEAR(r.pearson, 1.0, 1e-12);
  EXPECT_NEAR(r.ssim, 1.0, 1e-9);
  EXPECT_EQ(r.wasserstein, 0.0);
  // All errors land in the first histogram bucket.
  EXPECT_EQ(r.error_histogram[0], a.size());
  EXPECT_DOUBLE_EQ(r.compression_ratio_value(),
                   static_cast<double>(a.size() * 4) / 100.0);
  const auto text = r.to_text();
  EXPECT_NE(text.find("SATISFIED"), std::string::npos);
  EXPECT_NE(text.find("PSNR"), std::string::npos);
}

TEST(Report, DetectsBoundViolation) {
  const Shape shape({2, 4});
  NdArray<float> a(shape);
  NdArray<float> b(shape);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(i) + 0.5f;
  }
  const auto r = quality_report(a, b, nullptr, 0.1);
  EXPECT_FALSE(r.bound_satisfied);
  EXPECT_NE(r.to_text().find("VIOLATED"), std::string::npos);
}

TEST(Report, HistogramCoversAllValidPoints) {
  const Shape shape({4, 25});
  NdArray<float> a(shape);
  NdArray<float> b(shape);
  Rng rng(21);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 0.0f;
    b[i] = static_cast<float>(rng.uniform(-0.01, 0.01));
  }
  const auto r = quality_report(a, b, nullptr, 0.01);
  const std::size_t total = std::accumulate(
      r.error_histogram.begin(), r.error_histogram.end(), std::size_t{0});
  EXPECT_EQ(total, a.size());
  // Uniform errors spread across buckets.
  std::size_t nonempty = 0;
  for (const std::size_t v : r.error_histogram) nonempty += v > 0 ? 1 : 0;
  EXPECT_GE(nonempty, 8u);
}

TEST(Report, MismatchedShapesThrow) {
  NdArray<float> a(Shape({4, 4}));
  NdArray<float> b(Shape({4, 5}));
  EXPECT_THROW((void)quality_report(a, b), Error);
}

TEST(Metrics, AbsBoundFromRelative) {
  std::vector<float> data{0.0f, 50.0f};
  EXPECT_DOUBLE_EQ(abs_bound_from_relative(data, 0.01), 0.5);
  // Constant field: falls back to the raw relative value.
  std::vector<float> flat{2.0f, 2.0f};
  EXPECT_DOUBLE_EQ(abs_bound_from_relative(flat, 0.01), 0.01);
  EXPECT_THROW((void)abs_bound_from_relative(data, 0.0), Error);
}

}  // namespace
}  // namespace cliz
