#include "src/core/cliz.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/codec_context.hpp"
#include "src/metrics/metrics.hpp"
#include "src/ndarray/layout.hpp"

namespace cliz {
namespace {

/// Masked, periodic synthetic field in the SSH mould: [time][lat][lon].
struct TestField {
  NdArray<float> data;
  MaskMap mask;
};

TestField make_field(std::size_t n_time, std::size_t n_lat, std::size_t n_lon,
                     std::uint64_t seed) {
  const Shape shape({n_time, n_lat, n_lon});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(seed);

  // Spatial mask: a "continent" block plus scattered islands.
  std::vector<std::uint8_t> land(n_lat * n_lon, 0);
  for (std::size_t la = n_lat / 4; la < n_lat / 2; ++la) {
    for (std::size_t lo = n_lon / 3; lo < (2 * n_lon) / 3; ++lo) {
      land[la * n_lon + lo] = 1;
    }
  }
  for (int i = 0; i < 10; ++i) {
    land[rng.uniform_index(land.size())] = 1;
  }

  for (std::size_t t = 0; t < n_time; ++t) {
    const double season = 2.0 * std::numbers::pi * static_cast<double>(t) / 12.0;
    for (std::size_t la = 0; la < n_lat; ++la) {
      for (std::size_t lo = 0; lo < n_lon; ++lo) {
        const std::size_t off = (t * n_lat + la) * n_lon + lo;
        if (land[la * n_lon + lo] != 0) {
          mask.mutable_data()[off] = 0;
          data[off] = 9.96921e36f;
          continue;
        }
        const double space =
            std::sin(0.2 * static_cast<double>(la)) +
            std::cos(0.15 * static_cast<double>(lo));
        const double cyc =
            0.5 * std::cos(season + 0.1 * static_cast<double>(la));
        data[off] = static_cast<float>(space + cyc + 0.01 * rng.normal());
      }
    }
  }
  return {std::move(data), std::move(mask)};
}

PipelineConfig config3(std::vector<std::size_t> perm, FusionSpec fusion,
                       FittingKind fit, std::size_t period, bool classify) {
  PipelineConfig c;
  c.permutation = std::move(perm);
  c.fusion = std::move(fusion);
  c.fitting = fit;
  c.period = period;
  c.time_dim = 0;
  c.classify_bins = classify;
  return c;
}

void expect_bounded(const NdArray<float>& orig, const NdArray<float>& recon,
                    const MaskMap* mask, double eb) {
  ASSERT_EQ(recon.shape(), orig.shape());
  const auto stats = error_stats(orig.flat(), recon.flat(), mask);
  EXPECT_LE(stats.max_abs_error, eb);
}

// ---------------------------------------------------------------------------
// Exhaustive pipeline sweep: every (perm x fusion x fitting x period x
// classify) combination must round-trip within the bound.
// ---------------------------------------------------------------------------

struct SweepCase {
  std::vector<std::size_t> perm;
  std::size_t fusion_index;
  FittingKind fit;
  std::size_t period;
  bool classify;
};

class PipelineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelineSweep, RoundTripWithinBound) {
  const auto& p = GetParam();
  const auto field = make_field(24, 12, 14, 99);
  const auto fusion = all_fusions(3)[p.fusion_index];
  const auto config = config3(p.perm, fusion, p.fit, p.period, p.classify);
  const ClizCompressor codec(config);
  const double eb = 1e-3;
  const auto stream = codec.compress(field.data, eb, &field.mask);
  const auto recon = ClizCompressor::decompress(stream);
  expect_bounded(field.data, recon, &field.mask, eb);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const auto& perm : all_permutations(3)) {
    for (std::size_t f = 0; f < 4; ++f) {
      for (const FittingKind fit :
           {FittingKind::kLinear, FittingKind::kCubic}) {
        for (const std::size_t period : {std::size_t{0}, std::size_t{12}}) {
          for (const bool classify : {false, true}) {
            cases.push_back({perm, f, fit, period, classify});
          }
        }
      }
    }
  }
  return cases;  // 6 * 4 * 2 * 2 * 2 = 192, the paper's pipeline count
}

INSTANTIATE_TEST_SUITE_P(AllPipelines, PipelineSweep,
                         ::testing::ValuesIn(sweep_cases()));

// ---------------------------------------------------------------------------
// Targeted behaviours
// ---------------------------------------------------------------------------

TEST(Cliz, MaskedPositionsDecompressToFillValue) {
  const auto field = make_field(12, 10, 10, 5);
  const auto config = config3({0, 1, 2}, FusionSpec::none(3),
                              FittingKind::kCubic, 0, false);
  const auto stream =
      ClizCompressor(config).compress(field.data, 1e-3, &field.mask);
  const auto recon = ClizCompressor::decompress(stream);
  for (std::size_t i = 0; i < recon.size(); ++i) {
    if (!field.mask.valid(i)) {
      EXPECT_EQ(recon[i], 9.96921e36f);
    }
  }
}

TEST(Cliz, CustomFillValueRespected) {
  const auto field = make_field(12, 8, 8, 6);
  ClizOptions opts;
  opts.fill_value = -1234.5f;
  const auto config = config3({0, 1, 2}, FusionSpec::none(3),
                              FittingKind::kLinear, 0, false);
  const auto stream =
      ClizCompressor(config, opts).compress(field.data, 1e-3, &field.mask);
  const auto recon = ClizCompressor::decompress(stream);
  for (std::size_t i = 0; i < recon.size(); ++i) {
    if (!field.mask.valid(i)) {
      EXPECT_EQ(recon[i], -1234.5f);
    }
  }
}

TEST(Cliz, MaskImprovesRatioOnMaskedData) {
  const auto field = make_field(24, 16, 16, 7);
  const auto config = config3({0, 1, 2}, FusionSpec::none(3),
                              FittingKind::kCubic, 0, false);
  const ClizCompressor codec(config);
  const auto with_mask = codec.compress(field.data, 1e-3, &field.mask);
  const auto without_mask = codec.compress(field.data, 1e-3, nullptr);
  EXPECT_LT(with_mask.size(), without_mask.size());
}

TEST(Cliz, PeriodicExtractionHelpsOnStronglySeasonalData) {
  // Amplify the seasonal cycle so the periodic pipeline clearly wins.
  const Shape shape({48, 12, 12});
  NdArray<float> data(shape);
  Rng rng(8);
  for (std::size_t t = 0; t < 48; ++t) {
    for (std::size_t la = 0; la < 12; ++la) {
      for (std::size_t lo = 0; lo < 12; ++lo) {
        const double cyc =
            5.0 * std::cos(2.0 * std::numbers::pi *
                               static_cast<double>(t) / 12.0 +
                           0.3 * static_cast<double>(la + lo));
        data[(t * 12 + la) * 12 + lo] =
            static_cast<float>(cyc + 0.002 * rng.normal());
      }
    }
  }
  const auto base = config3({0, 1, 2}, FusionSpec::none(3),
                            FittingKind::kLinear, 0, false);
  auto periodic = base;
  periodic.period = 12;
  const auto s_plain = ClizCompressor(base).compress(data, 1e-3);
  const auto s_periodic = ClizCompressor(periodic).compress(data, 1e-3);
  EXPECT_LT(s_periodic.size(), s_plain.size());

  const auto recon = ClizCompressor::decompress(s_periodic);
  expect_bounded(data, recon, nullptr, 1e-3);
}

TEST(Cliz, ClassificationHelpsOnColumnShiftedBins) {
  // Per-column biased fine structure: half the columns drift up, half
  // down, by about one quantization bin per step -> persistent +1/-1 bins
  // that classification shifts to 0.
  const Shape shape({64, 12, 12});
  NdArray<float> data(shape);
  const double eb = 1e-3;
  for (std::size_t t = 0; t < 64; ++t) {
    for (std::size_t la = 0; la < 12; ++la) {
      for (std::size_t lo = 0; lo < 12; ++lo) {
        const double direction = (la + lo) % 2 == 0 ? 1.0 : -1.0;
        data[(t * 12 + la) * 12 + lo] = static_cast<float>(
            direction * 2.0 * eb * static_cast<double>(t));
      }
    }
  }
  const auto plain = config3({0, 1, 2}, FusionSpec::none(3),
                             FittingKind::kLinear, 0, false);
  auto classified = plain;
  classified.classify_bins = true;
  const auto s_plain = ClizCompressor(plain).compress(data, eb);
  const auto s_classified = ClizCompressor(classified).compress(data, eb);
  EXPECT_LE(s_classified.size(), s_plain.size());
  const auto recon = ClizCompressor::decompress(s_classified);
  expect_bounded(data, recon, nullptr, eb);
}

TEST(Cliz, GeneralizedClassificationParamsRoundTrip) {
  // j = 2, k = 2: three trees and shifts up to +/-2 must round-trip.
  const Shape shape({48, 10, 10});
  NdArray<float> data(shape);
  const double eb = 1e-3;
  for (std::size_t t = 0; t < 48; ++t) {
    for (std::size_t p = 0; p < 100; ++p) {
      const double drift = static_cast<double>((p % 5)) - 2.0;  // -2..+2 bins
      data[t * 100 + p] =
          static_cast<float>(drift * 2.0 * eb * static_cast<double>(t) +
                             0.1 * std::sin(static_cast<double>(p)));
    }
  }
  ClizOptions opts;
  opts.classify = ClassifyParams{2, 2};
  auto config = config3({0, 1, 2}, FusionSpec::none(3),
                        FittingKind::kLinear, 0, true);
  const auto stream = ClizCompressor(config, opts).compress(data, eb);
  const auto recon = ClizCompressor::decompress(stream);
  expect_bounded(data, recon, nullptr, eb);
}

TEST(Cliz, JkZeroIsPlainSingleTree) {
  // j = 0, k = 0 degenerates to one tree and no shifting; must round-trip
  // and cost no more than a few bytes over classification off.
  const auto field = make_field(12, 10, 10, 55);
  ClizOptions opts;
  opts.classify = ClassifyParams{0, 0};
  auto on = config3({0, 1, 2}, FusionSpec::none(3), FittingKind::kCubic, 0,
                    true);
  auto off = on;
  off.classify_bins = false;
  const auto s_on =
      ClizCompressor(on, opts).compress(field.data, 1e-3, &field.mask);
  const auto s_off =
      ClizCompressor(off, opts).compress(field.data, 1e-3, &field.mask);
  const auto recon = ClizCompressor::decompress(s_on);
  expect_bounded(field.data, recon, &field.mask, 1e-3);
  EXPECT_LT(s_on.size(), s_off.size() + s_off.size() / 10 + 256);
}

TEST(Cliz, TwoDimensionalDataSkipsClassification) {
  NdArray<float> data(Shape({32, 32}));
  Rng rng(9);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  PipelineConfig config = PipelineConfig::defaults(2);
  config.classify_bins = true;  // must silently disable for 2-D
  const auto stream = ClizCompressor(config).compress(data, 1e-2);
  const auto recon = ClizCompressor::decompress(stream);
  expect_bounded(data, recon, nullptr, 1e-2);
}

TEST(Cliz, FourDimensionalRoundTrip) {
  const Shape shape({12, 5, 8, 9});
  NdArray<float> data(shape);
  Rng rng(10);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto c = shape.coords(i);
    data[i] = static_cast<float>(
        std::sin(0.3 * static_cast<double>(c[0])) +
        0.1 * static_cast<double>(c[1]) +
        std::cos(0.2 * static_cast<double>(c[2] + c[3])) +
        0.01 * rng.normal());
  }
  PipelineConfig config = PipelineConfig::defaults(4);
  config.classify_bins = true;
  config.period = 4;
  const auto stream = ClizCompressor(config).compress(data, 1e-3);
  const auto recon = ClizCompressor::decompress(stream);
  expect_bounded(data, recon, nullptr, 1e-3);
}

TEST(Cliz, FullyMaskedDatasetProducesTinyStream) {
  const Shape shape({8, 8, 8});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 9.96921e36f;
    mask.mutable_data()[i] = 0;
  }
  const auto config = config3({0, 1, 2}, FusionSpec::none(3),
                              FittingKind::kCubic, 0, false);
  const auto stream = ClizCompressor(config).compress(data, 1e-3, &mask);
  EXPECT_LT(stream.size(), 256u);
  const auto recon = ClizCompressor::decompress(stream);
  for (std::size_t i = 0; i < recon.size(); ++i) {
    EXPECT_EQ(recon[i], 9.96921e36f);
  }
}

TEST(Cliz, PipelineConfigSerializationRoundTrip) {
  auto config = config3({2, 0, 1}, FusionSpec({{0, 0}, {1, 2}}),
                        FittingKind::kLinear, 12, true);
  ByteWriter w;
  config.serialize(w);
  ByteReader r(w.bytes());
  const auto back = PipelineConfig::deserialize(r);
  EXPECT_EQ(back, config);
  EXPECT_EQ(back.label(), "perm=201 fusion=1&2 fit=linear period=12 classify=yes");
}

TEST(Cliz, MismatchedMaskShapeThrows) {
  NdArray<float> data(Shape({4, 4}));
  const auto mask = MaskMap::all_valid(Shape({4, 5}));
  const auto config = PipelineConfig::defaults(2);
  EXPECT_THROW((void)ClizCompressor(config).compress(data, 1e-3, &mask),
               Error);
}

TEST(Cliz, MismatchedConfigArityThrows) {
  NdArray<float> data(Shape({4, 4, 4}));
  const auto config = PipelineConfig::defaults(2);
  EXPECT_THROW((void)ClizCompressor(config).compress(data, 1e-3), Error);
}

TEST(Cliz, CorruptAndTruncatedStreamsThrow) {
  const auto field = make_field(12, 8, 8, 11);
  const auto config = config3({0, 1, 2}, FusionSpec::none(3),
                              FittingKind::kCubic, 12, true);
  auto stream = ClizCompressor(config).compress(field.data, 1e-3, &field.mask);
  auto truncated = stream;
  truncated.resize(truncated.size() * 2 / 3);
  EXPECT_THROW((void)ClizCompressor::decompress(truncated), Error);
  EXPECT_THROW((void)ClizCompressor::decompress({}), Error);
}

TEST(Cliz, DeterministicOutput) {
  const auto field = make_field(12, 10, 10, 12);
  const auto config = config3({1, 2, 0}, FusionSpec({{0, 1}, {2, 2}}),
                              FittingKind::kCubic, 12, true);
  const ClizCompressor codec(config);
  EXPECT_EQ(codec.compress(field.data, 1e-3, &field.mask),
            codec.compress(field.data, 1e-3, &field.mask));
}

TEST(Cliz, VerifiedEncodeMatchesPlainAndReportsInStats) {
  const auto field = make_field(24, 10, 10, 31);
  const auto config = config3({0, 1, 2}, FusionSpec::none(3),
                              FittingKind::kCubic, 12, true);
  const double eb = 1e-3;
  const auto plain = ClizCompressor(config).compress(field.data, eb,
                                                     &field.mask);

  ClizOptions opts;
  opts.verify_encode = true;
  const ClizCompressor checked(config, opts);
  // A healthy pipeline passes verification on the first attempt, so the
  // stream is byte-identical to the unverified one.
  EXPECT_EQ(checked.compress(field.data, eb, &field.mask), plain);
  EXPECT_TRUE(checked.last_stats().verified);
  EXPECT_EQ(checked.last_stats().verify_downgrades, 0u);
  EXPECT_GT(checked.last_stats().verify_seconds, 0.0);

  // Context-reusing variant reports through ctx.stats.
  CodecContext ctx;
  const auto again = checked.compress(field.data, eb, &field.mask, ctx);
  EXPECT_EQ(again, plain);
  EXPECT_TRUE(ctx.stats.verified);
}

TEST(Cliz, VerifiedEncodeF64RoundTrips) {
  const Shape shape({16, 8, 8});
  NdArray<double> data(shape);
  Rng rng(77);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.01 * static_cast<double>(i % 97) + 0.001 * rng.normal();
  }
  ClizOptions opts;
  opts.verify_encode = true;
  const auto config = config3({0, 1, 2}, FusionSpec::none(3),
                              FittingKind::kCubic, 0, false);
  const auto stream =
      ClizCompressor(config, opts).compress(data, 1e-4);
  const auto recon = ClizCompressor::decompress_f64(stream);
  ASSERT_EQ(recon.shape(), shape);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::abs(recon[i] - data[i]), 1e-4);
  }
}

}  // namespace
}  // namespace cliz
