#include "src/metrics/rate_control.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/climate/datasets.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/cliz.hpp"
#include "src/core/compressor.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

NdArray<float> smooth_array(const DimVec& dims, std::uint64_t seed) {
  const Shape shape(dims);
  NdArray<float> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += std::sin(0.08 * static_cast<double>(c[d]));
    }
    a[i] = static_cast<float>(v + 0.01 * rng.normal());
  }
  return a;
}

CompressFn cliz_fn(const NdArray<float>& data) {
  return [&data](double eb) {
    return ClizCompressor(PipelineConfig::defaults(data.shape().ndims()))
        .compress(data, eb);
  };
}

class PsnrTargets : public ::testing::TestWithParam<double> {};

TEST_P(PsnrTargets, HitsTargetWithinTolerance) {
  const double target = GetParam();
  const auto data = smooth_array({24, 26, 28}, 5);
  const auto result = compress_to_psnr(data, target, cliz_fn(data));
  // Achieved PSNR within a few percent of the target (dB scale).
  EXPECT_NEAR(result.achieved, target, target * 0.05);
  // The returned stream really decodes to that quality.
  const auto recon = decompress_any(result.stream);
  EXPECT_NEAR(error_stats(data.flat(), recon.flat()).psnr, result.achieved,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Targets, PsnrTargets,
                         ::testing::Values(50.0, 70.0, 90.0, 110.0));

class RatioTargets : public ::testing::TestWithParam<double> {};

TEST_P(RatioTargets, HitsTargetWithinTolerance) {
  const double target = GetParam();
  const auto data = smooth_array({32, 32, 16}, 6);
  const auto result = compress_to_ratio(data, target, cliz_fn(data));
  const double got =
      compression_ratio(data.size() * sizeof(float), result.stream.size());
  EXPECT_NEAR(got, target, target * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Targets, RatioTargets,
                         ::testing::Values(5.0, 10.0, 25.0));

TEST(RateControl, WorksAcrossCodecs) {
  const auto data = smooth_array({20, 20, 20}, 7);
  for (const auto& name : {"sz3", "qoz", "sz2"}) {
    auto comp = make_compressor(name);
    const auto result = compress_to_psnr(
        data, 80.0,
        [&](double eb) { return comp->compress(data, eb); });
    EXPECT_NEAR(result.achieved, 80.0, 6.0) << name;
  }
}

TEST(RateControl, MaskedPsnrTarget) {
  const auto field = make_ssh(0.1, 950);
  PipelineConfig config = PipelineConfig::defaults(3);
  const auto result = compress_to_psnr(
      field.data, 70.0,
      [&](double eb) {
        return ClizCompressor(config).compress(field.data, eb,
                                               field.mask_ptr());
      },
      field.mask_ptr());
  EXPECT_NEAR(result.achieved, 70.0, 5.0);
}

TEST(RateControl, ReportsIterationsAndBound) {
  const auto data = smooth_array({16, 16}, 8);
  const auto result = compress_to_ratio(data, 8.0, cliz_fn(data));
  EXPECT_GT(result.iterations, 0);
  EXPECT_GT(result.abs_error_bound, 0.0);
}

TEST(RateControl, InvalidArgumentsRejected) {
  const auto data = smooth_array({8, 8}, 9);
  EXPECT_THROW((void)compress_to_psnr(data, -1.0, cliz_fn(data)), Error);
  RateControlOptions bad;
  bad.bound_lo = 0.0;
  EXPECT_THROW((void)compress_to_ratio(data, 5.0, cliz_fn(data), bad),
               Error);
}

}  // namespace
}  // namespace cliz
