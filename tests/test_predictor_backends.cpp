// Predictor-stage registry tests: every predictor backend must round-trip
// the golden-corpus datasets within the bound (float32 and float64, plain
// and chunked frames), streams must stay thread-count invariant for the
// non-default backends (interp is locked byte-exactly by
// test_golden_streams.cpp), the default stream's predictor byte must keep
// the historical mask-byte values, and the autotune predictor grid must be
// deterministic with ties keeping the interp default.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/autotune.hpp"
#include "src/core/chunked.hpp"
#include "src/core/cliz.hpp"
#include "src/core/codec_context.hpp"
#include "src/core/stage_backends.hpp"
#include "src/lossless/lossless.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

constexpr double kEb = 1e-3;
constexpr float kFill = 9.96921e36f;

// --- the golden-corpus datasets (same generators as the golden locks) ----

NdArray<float> plain_field() {
  const Shape shape({40, 48});
  NdArray<float> a(shape);
  Rng rng(1001);
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t c = 0; c < 48; ++c) {
      const double v = 0.03 * static_cast<double>(r) -
                       0.015 * static_cast<double>(c) +
                       0.25 * static_cast<double>((r + c) % 9) +
                       0.05 * rng.uniform();
      a[r * 48 + c] = static_cast<float>(v);
    }
  }
  return a;
}

struct MaskedField {
  NdArray<float> data;
  MaskMap mask;
};

MaskedField masked_field() {
  const Shape shape({16, 12, 14});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(2002);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 13 == 0) {
      mask.mutable_data()[i] = 0;
      data[i] = kFill;
      continue;
    }
    const double v = 0.1 * static_cast<double>(i % 14) -
                     0.07 * static_cast<double>((i / 14) % 12) +
                     0.04 * rng.uniform();
    data[i] = static_cast<float>(v);
  }
  return {std::move(data), std::move(mask)};
}

NdArray<float> periodic_field() {
  const Shape shape({36, 10, 12});
  NdArray<float> a(shape);
  Rng rng(3003);
  for (std::size_t t = 0; t < 36; ++t) {
    const double season =
        0.1 * static_cast<double>((t % 6) * (11 - (t % 6)));
    for (std::size_t p = 0; p < 120; ++p) {
      const double v = season + 0.02 * static_cast<double>(p % 12) +
                       0.03 * rng.uniform();
      a[t * 120 + p] = static_cast<float>(v);
    }
  }
  return a;
}

NdArray<float> chunked_field() {
  const Shape shape({30, 12, 10});
  NdArray<float> a(shape);
  Rng rng(4004);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double v = 0.05 * static_cast<double>(i % 120) -
                     0.002 * static_cast<double>(i / 120) +
                     0.03 * rng.uniform();
    a[i] = static_cast<float>(v);
  }
  return a;
}

PipelineConfig masked_config() {
  PipelineConfig c = PipelineConfig::defaults(3);
  c.dynamic_fitting = true;
  c.classify_bins = true;
  return c;
}

PipelineConfig periodic_config() {
  PipelineConfig c = PipelineConfig::defaults(3);
  c.period = 6;
  c.time_dim = 0;
  return c;
}

const PredictorBackend kAllPredictors[] = {
    PredictorBackend::kInterp,
    PredictorBackend::kLorenzo1,
    PredictorBackend::kLorenzo2,
    PredictorBackend::kRegression,
};

ClizOptions options_for(PredictorBackend p) {
  ClizOptions o;
  o.predictor = p;
  return o;
}

// --- round trips ---------------------------------------------------------

TEST(PredictorBackends, AllBackendsRoundTripGoldenCorpus) {
  const auto plain = plain_field();
  const auto mf = masked_field();
  const auto periodic = periodic_field();
  for (const PredictorBackend predictor : kAllPredictors) {
    SCOPED_TRACE(std::string("predictor=") +
                 predictor_backend_name(predictor));
    const ClizOptions opts = options_for(predictor);

    CodecContext cctx;
    const auto plain_stream = ClizCompressor(PipelineConfig::defaults(2),
                                             opts)
                                  .compress(plain, kEb, nullptr, cctx);
    EXPECT_EQ(cctx.stats.predictor_backend,
              static_cast<std::uint8_t>(predictor));
    CodecContext dctx;
    const auto plain_out = ClizCompressor::decompress(plain_stream, dctx);
    EXPECT_LE(error_stats(plain.flat(), plain_out.flat()).max_abs_error,
              kEb);
    EXPECT_EQ(dctx.stats.predictor_backend,
              static_cast<std::uint8_t>(predictor));

    const auto masked_stream = ClizCompressor(masked_config(), opts)
                                   .compress(mf.data, kEb, &mf.mask);
    const auto masked_out = ClizCompressor::decompress(masked_stream);
    EXPECT_LE(error_stats(mf.data.flat(), masked_out.flat(), &mf.mask)
                  .max_abs_error,
              kEb);
    for (std::size_t i = 0; i < masked_out.size(); ++i) {
      if (!mf.mask.valid(i)) {
        ASSERT_EQ(masked_out[i], kFill);
      }
    }

    const auto periodic_stream = ClizCompressor(periodic_config(), opts)
                                     .compress(periodic, kEb);
    const auto periodic_out = ClizCompressor::decompress(periodic_stream);
    EXPECT_LE(error_stats(periodic.flat(), periodic_out.flat()).max_abs_error,
              kEb);
  }
}

TEST(PredictorBackends, AllBackendsRoundTripFloat64) {
  const auto plain = plain_field();
  NdArray<double> data(plain.shape());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    data[i] = static_cast<double>(plain[i]);
  }
  for (const PredictorBackend predictor : kAllPredictors) {
    SCOPED_TRACE(std::string("predictor=") +
                 predictor_backend_name(predictor));
    const auto stream =
        ClizCompressor(PipelineConfig::defaults(2), options_for(predictor))
            .compress(data, kEb);
    const auto out = ClizCompressor::decompress_f64(stream);
    ASSERT_EQ(out.shape(), data.shape());
    double max_err = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      max_err = std::max(max_err, std::abs(data[i] - out[i]));
    }
    EXPECT_LE(max_err, kEb);
  }
}

TEST(PredictorBackends, AllBackendsRoundTripChunkedFrames) {
  const auto data = chunked_field();
  for (const PredictorBackend predictor : kAllPredictors) {
    SCOPED_TRACE(std::string("predictor=") +
                 predictor_backend_name(predictor));
    ChunkedOptions copts;
    copts.chunks = 4;
    copts.codec = options_for(predictor);
    const auto frame = chunked_compress(data, kEb,
                                        PipelineConfig::defaults(3), nullptr,
                                        copts);
    const auto out = chunked_decompress(frame);
    EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, kEb);
  }
}

TEST(PredictorBackends, RegressionHandlesFullyMaskedBlocks) {
  // A whole quadrant of masked rows: the regression side block serializes
  // nothing for empty blocks, and both sides must agree on occupancy from
  // the mask alone.
  const Shape shape({32, 24});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(5005);
  for (std::size_t r = 0; r < 32; ++r) {
    for (std::size_t c = 0; c < 24; ++c) {
      const std::size_t i = r * 24 + c;
      if (r < 16 && c < 16) {
        mask.mutable_data()[i] = 0;
        data[i] = kFill;
      } else {
        data[i] = static_cast<float>(0.02 * static_cast<double>(r) +
                                     0.05 * static_cast<double>(c) +
                                     0.01 * rng.uniform());
      }
    }
  }
  const auto stream =
      ClizCompressor(PipelineConfig::defaults(2),
                     options_for(PredictorBackend::kRegression))
          .compress(data, kEb, &mask);
  const auto out = ClizCompressor::decompress(stream);
  EXPECT_LE(error_stats(data.flat(), out.flat(), &mask).max_abs_error, kEb);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!mask.valid(i)) {
      ASSERT_EQ(out[i], kFill);
    }
  }
}

// --- default-stream wire compatibility -----------------------------------

TEST(PredictorBackends, DefaultOptionsReproduceInterpStreams) {
  // ClizOptions{} must mean interp: the golden byte-identity locks in
  // test_golden_streams.cpp depend on the default constructor.
  EXPECT_EQ(ClizOptions{}.predictor, PredictorBackend::kInterp);
  const auto data = plain_field();
  EXPECT_EQ(ClizCompressor(PipelineConfig::defaults(2)).compress(data, kEb),
            ClizCompressor(PipelineConfig::defaults(2),
                           options_for(PredictorBackend::kInterp))
                .compress(data, kEb));
}

TEST(PredictorBackends, PredictorByteKeepsHistoricalMaskByteValues) {
  // The predictor byte multiplexes (id << 1) | has_mask into the former
  // mask byte: default streams must still carry 0 (unmasked) and 1
  // (masked) there, which is what keeps them byte-identical to the
  // pre-registry format. Locate the byte as the first divergence between
  // interp and lorenzo1 compressions of the same input.
  const auto data = plain_field();
  const auto interp_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(2)).compress(data, kEb));
  const auto lorenzo_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(2),
                     options_for(PredictorBackend::kLorenzo1))
          .compress(data, kEb));
  std::size_t pos = 0;
  while (pos < interp_raw.size() && interp_raw[pos] == lorenzo_raw[pos]) {
    ++pos;
  }
  ASSERT_LT(pos, interp_raw.size());
  EXPECT_EQ(interp_raw[pos], 0u);   // (interp 0 << 1) | no mask
  EXPECT_EQ(lorenzo_raw[pos], 2u);  // (lorenzo1 1 << 1) | no mask

  const auto mf = masked_field();
  const auto masked_interp = lossless_decompress(
      ClizCompressor(masked_config()).compress(mf.data, kEb, &mf.mask));
  const auto masked_lorenzo = lossless_decompress(
      ClizCompressor(masked_config(),
                     options_for(PredictorBackend::kLorenzo1))
          .compress(mf.data, kEb, &mf.mask));
  std::size_t mpos = 0;
  while (mpos < masked_interp.size() &&
         masked_interp[mpos] == masked_lorenzo[mpos]) {
    ++mpos;
  }
  ASSERT_LT(mpos, masked_interp.size());
  EXPECT_EQ(masked_interp[mpos], 1u);   // (interp 0 << 1) | mask
  EXPECT_EQ(masked_lorenzo[mpos], 3u);  // (lorenzo1 1 << 1) | mask
}

// --- registry lookups ----------------------------------------------------

TEST(PredictorBackends, RegistryCoversExactlyTheWireIds) {
  for (const PredictorBackend predictor : kAllPredictors) {
    const PredictorBackendOps* ops =
        find_predictor_backend(static_cast<std::uint8_t>(predictor));
    ASSERT_NE(ops, nullptr);
    EXPECT_EQ(ops->id, predictor);
    EXPECT_STREQ(ops->name, predictor_backend_name(predictor));
  }
  EXPECT_EQ(find_predictor_backend(4), nullptr);
  EXPECT_EQ(find_predictor_backend(0x7F), nullptr);
  EXPECT_EQ(find_predictor_backend(0xFF), nullptr);
}

TEST(PredictorBackends, NamesParseBackToIds) {
  for (const PredictorBackend predictor : kAllPredictors) {
    const auto parsed =
        parse_predictor_backend(predictor_backend_name(predictor));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, predictor);
  }
  EXPECT_FALSE(parse_predictor_backend("huffman").has_value());
  EXPECT_FALSE(parse_predictor_backend("").has_value());
}

// --- thread-count invariance ---------------------------------------------
// Mirror of GoldenStreams.StreamsAreThreadCountInvariant for the
// non-default predictors: work partitioning never depends on the worker
// count, whatever the backend.

struct ThreadCountGuard {
  int saved = hardware_threads();
  ~ThreadCountGuard() { set_thread_count(saved); }
};

TEST(PredictorBackends, StreamsAreThreadCountInvariant) {
  const auto plain = plain_field();
  const auto mf = masked_field();
  const auto periodic = periodic_field();

  ThreadCountGuard guard;
  const int max_threads = std::max(4, guard.saved);
  for (const PredictorBackend predictor :
       {PredictorBackend::kLorenzo1, PredictorBackend::kLorenzo2,
        PredictorBackend::kRegression}) {
    SCOPED_TRACE(std::string("predictor=") +
                 predictor_backend_name(predictor));
    const ClizOptions opts = options_for(predictor);

    set_thread_count(1);
    const auto serial_plain =
        ClizCompressor(PipelineConfig::defaults(2), opts)
            .compress(plain, kEb);
    const auto serial_masked = ClizCompressor(masked_config(), opts)
                                   .compress(mf.data, kEb, &mf.mask);
    const auto serial_periodic =
        ClizCompressor(periodic_config(), opts).compress(periodic, kEb);

    for (const int threads : {2, max_threads}) {
      set_thread_count(threads);
      EXPECT_EQ(ClizCompressor(PipelineConfig::defaults(2), opts)
                    .compress(plain, kEb),
                serial_plain)
          << "plain stream differs at " << threads << " thread(s)";
      EXPECT_EQ(ClizCompressor(masked_config(), opts)
                    .compress(mf.data, kEb, &mf.mask),
                serial_masked)
          << "masked stream differs at " << threads << " thread(s)";
      EXPECT_EQ(ClizCompressor(periodic_config(), opts)
                    .compress(periodic, kEb),
                serial_periodic)
          << "periodic stream differs at " << threads << " thread(s)";
    }
  }
}

// --- autotune predictor grid ---------------------------------------------

TEST(PredictorBackends, AutotuneThreeAxisGridIsDeterministic) {
  const auto data = periodic_field();
  AutotuneOptions opts;
  opts.sampling_rate = 0.2;
  const auto first = autotune(data, kEb, nullptr, opts);
  const auto second = autotune(data, kEb, nullptr, opts);
  ASSERT_EQ(first.predictor_candidates.size(), 4u);
  ASSERT_EQ(first.backend_candidates.size(), 4u);
  EXPECT_EQ(first.best_predictor, second.best_predictor);
  EXPECT_EQ(first.best_entropy, second.best_entropy);
  EXPECT_EQ(first.best_lossless, second.best_lossless);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(first.predictor_candidates[i].predictor,
              kAllPredictors[i]);  // trial order is wire-id order
    EXPECT_EQ(first.predictor_candidates[i].estimated_ratio,
              second.predictor_candidates[i].estimated_ratio)
        << "predictor trial " << i;
    EXPECT_GT(first.predictor_candidates[i].estimated_ratio, 0.0);
  }
  // The recorded choice reproduces: compressing with the tuned predictor
  // and backends round-trips within the bound.
  ClizOptions copts;
  copts.predictor = first.best_predictor;
  copts.entropy = first.best_entropy;
  copts.lossless = first.best_lossless;
  const auto stream = ClizCompressor(first.best, copts).compress(data, kEb);
  const auto out = ClizCompressor::decompress(stream);
  EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, kEb);

  // The JSON report carries all three axes.
  const std::string json = first.to_json();
  EXPECT_NE(json.find("\"best_predictor\""), std::string::npos);
  EXPECT_NE(json.find("\"predictor_candidates\""), std::string::npos);
  EXPECT_NE(json.find("\"backend_candidates\""), std::string::npos);
}

TEST(PredictorBackends, AutotunePredictorGridCanBeDisabled) {
  const auto data = plain_field();
  AutotuneOptions opts;
  opts.sampling_rate = 0.2;
  opts.consider_predictors = false;
  const auto result = autotune(data, kEb, nullptr, opts);
  EXPECT_TRUE(result.predictor_candidates.empty());
  EXPECT_EQ(result.best_predictor, PredictorBackend::kInterp);
}

}  // namespace
}  // namespace cliz
