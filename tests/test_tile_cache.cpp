// TileCache unit tests: LRU behaviour under a byte budget, oversized-entry
// handling, telemetry counters, and a concurrent hammer that gives TSan a
// workload over the sharded locking.
#include "src/core/tile_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"

namespace cliz {
namespace {

TileCache::Payload payload_of(std::size_t n, std::uint8_t fill) {
  return std::make_shared<std::vector<std::uint8_t>>(n, fill);
}

TEST(TileCache, LookupMissThenHit) {
  TileCache cache(1 << 20);
  const TileCache::Key key{1, 2, 3};
  EXPECT_EQ(cache.lookup(key), nullptr);
  cache.insert(key, payload_of(64, 0xAB));
  const auto hit = cache.lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 64u);
  EXPECT_EQ((*hit)[0], 0xAB);

  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 64u);
}

TEST(TileCache, DigestDisambiguatesSameVarAndTile) {
  // Same variable/tile ids with different payload digests are different
  // entries — a stale or cross-frame tile can never serve a lookup.
  TileCache cache(1 << 20);
  cache.insert({7, 7, 100}, payload_of(16, 1));
  EXPECT_EQ(cache.lookup({7, 7, 200}), nullptr);
  const auto hit = cache.lookup({7, 7, 100});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 1);
}

TEST(TileCache, EvictsLeastRecentlyUsedUnderBudget) {
  // Single shard so the LRU order is global and deterministic.
  TileCache cache(4 * 100, 1);
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert({1, i, 0}, payload_of(100, static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(cache.stats().entries, 4u);
  // Touch tile 0 so tile 1 becomes the eviction victim.
  EXPECT_NE(cache.lookup({1, 0, 0}), nullptr);
  cache.insert({1, 9, 0}, payload_of(100, 9));
  EXPECT_EQ(cache.stats().entries, 4u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup({1, 1, 0}), nullptr);  // evicted
  EXPECT_NE(cache.lookup({1, 0, 0}), nullptr);  // kept (recently used)
  EXPECT_NE(cache.lookup({1, 9, 0}), nullptr);  // newly inserted
}

TEST(TileCache, OversizedEntryIsDroppedNotCached) {
  TileCache cache(256, 1);
  cache.insert({1, 1, 1}, payload_of(10'000, 5));
  EXPECT_EQ(cache.lookup({1, 1, 1}), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.oversized, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
}

TEST(TileCache, ReinsertRefreshesEntry) {
  TileCache cache(1 << 20, 1);
  cache.insert({3, 3, 3}, payload_of(32, 1));
  cache.insert({3, 3, 3}, payload_of(48, 2));
  const auto hit = cache.lookup({3, 3, 3});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 48u);
  EXPECT_EQ((*hit)[0], 2);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes, 48u);
}

TEST(TileCache, ClearEmptiesEverything) {
  TileCache cache(1 << 20);
  for (std::uint64_t i = 0; i < 32; ++i) {
    cache.insert({i, i, 0}, payload_of(64, 0));
  }
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.lookup({4, 4, 0}), nullptr);
}

TEST(TileCache, VariableIdIsStableAndDiscriminates) {
  EXPECT_EQ(TileCache::variable_id("TEMP"), TileCache::variable_id("TEMP"));
  EXPECT_NE(TileCache::variable_id("TEMP"), TileCache::variable_id("SALT"));
  EXPECT_NE(TileCache::variable_id("a#b"), TileCache::variable_id("a#c"));
}

TEST(TileCache, BudgetIsRespectedAcrossManyInserts) {
  const std::size_t budget = 1 << 14;
  TileCache cache(budget, 4);
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const auto var = static_cast<std::uint64_t>(rng.uniform_index(8));
    const auto tile = static_cast<std::uint64_t>(rng.uniform_index(64));
    cache.insert({var, tile, static_cast<std::uint32_t>(var * 64 + tile)},
                 payload_of(64 + rng.uniform_index(256), 0));
  }
  EXPECT_LE(cache.stats().bytes, budget);
  EXPECT_GT(cache.stats().evictions, 0u);
}

/// Concurrency hammer: many threads inserting and looking up overlapping
/// key ranges under a tight budget. Run under TSan in CI; the assertions
/// here are liveness/accounting sanity, the sanitizer checks the locking.
TEST(TileCacheThreads, ConcurrentHammer) {
  TileCache cache(1 << 16, 8);
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  std::atomic<std::size_t> found{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &found, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOps; ++i) {
        const auto var = static_cast<std::uint64_t>(rng.uniform_index(4));
        const auto tile = static_cast<std::uint64_t>(rng.uniform_index(128));
        const TileCache::Key key{var, tile,
                                 static_cast<std::uint32_t>(var ^ tile)};
        if (i % 3 == 0) {
          cache.insert(key, payload_of(32 + rng.uniform_index(128),
                                       static_cast<std::uint8_t>(tile)));
        } else if (const auto hit = cache.lookup(key); hit != nullptr) {
          // Payload contents must be coherent with the key even under
          // concurrent eviction (shared_ptr keeps the bytes alive).
          if ((*hit)[0] == static_cast<std::uint8_t>(tile)) {
            found.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto s = cache.stats();
  EXPECT_LE(s.bytes, std::size_t{1} << 16);
  EXPECT_EQ(s.hits, found.load());
  EXPECT_GT(s.insertions, 0u);
}

}  // namespace
}  // namespace cliz
