// Cancellation-governor tests: a CancelToken (or armed deadline) must abort
// compress, decompress, autotune, and archive work cooperatively — a clean
// Error carrying kCancelled / kDeadlineExceeded within one chunk/segment
// granule, never a crash, a leak, or a torn result. The hammer test races
// cancel() from another thread against multi-threaded chunked decodes: every
// iteration must end in either a bit-exact decode or a kCancelled refusal.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <thread>

#include "src/common/governor.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/autotune.hpp"
#include "src/core/chunked.hpp"
#include "src/core/cliz.hpp"
#include "src/core/codec_context.hpp"
#include "src/core/compressor.hpp"

namespace cliz {
namespace {

NdArray<float> sample_field(std::size_t n0, std::size_t n1, std::size_t n2,
                            std::uint64_t seed) {
  NdArray<float> data(Shape({n0, n1, n2}));
  Rng rng(seed);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(0.05 * static_cast<double>(i % 113) +
                                 0.02 * rng.normal());
  }
  return data;
}

ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "no Error thrown";
  return ErrorCode::kCorruptStream;
}

TEST(ErrorTaxonomy, NamesAndRetryability) {
  EXPECT_STREQ(error_code_name(ErrorCode::kCorruptStream), "CorruptStream");
  EXPECT_STREQ(error_code_name(ErrorCode::kLimitExceeded), "LimitExceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kCancelled), "Cancelled");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kIo), "Io");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(error_code_name(ErrorCode::kBadArgument), "BadArgument");

  // Only transient categories are worth a retry; resending a stream the
  // decoder rejected (corrupt, over-limit, bad call) can never succeed.
  EXPECT_TRUE(error_is_retryable(ErrorCode::kIo));
  EXPECT_TRUE(error_is_retryable(ErrorCode::kDeadlineExceeded));
  EXPECT_FALSE(error_is_retryable(ErrorCode::kCorruptStream));
  EXPECT_FALSE(error_is_retryable(ErrorCode::kLimitExceeded));
  EXPECT_FALSE(error_is_retryable(ErrorCode::kCancelled));
  EXPECT_FALSE(error_is_retryable(ErrorCode::kUnsupported));
  EXPECT_FALSE(error_is_retryable(ErrorCode::kBadArgument));

  // Legacy single-argument throws keep their historical classification.
  EXPECT_EQ(Error("x").code(), ErrorCode::kCorruptStream);
}

TEST(CancelGovernor, PreCancelledCompressRefuses) {
  const auto data = sample_field(8, 12, 10, 11);
  CancelToken token;
  token.cancel();
  ClizOptions opts;
  opts.cancel = &token;
  const ClizCompressor comp(PipelineConfig::defaults(3), opts);
  EXPECT_EQ(code_of([&] { (void)comp.compress(data, 1e-3); }),
            ErrorCode::kCancelled);
}

TEST(CancelGovernor, PreCancelledDecodeRefuses) {
  const auto data = sample_field(8, 12, 10, 12);
  const auto stream =
      ClizCompressor(PipelineConfig::defaults(3)).compress(data, 1e-3);
  CancelToken token;
  token.cancel();
  CodecContext ctx;
  ctx.cancel = &token;
  EXPECT_EQ(code_of([&] { (void)ClizCompressor::decompress(stream, ctx); }),
            ErrorCode::kCancelled);
  // The same context decodes fine once the token is detached.
  ctx.cancel = nullptr;
  EXPECT_NO_THROW((void)ClizCompressor::decompress(stream, ctx));
}

TEST(CancelGovernor, ExpiredDeadlineRefusesWithDeadlineCode) {
  const auto data = sample_field(8, 12, 10, 13);
  const auto stream =
      ClizCompressor(PipelineConfig::defaults(3)).compress(data, 1e-3);
  CancelToken token;
  token.set_deadline_after(std::chrono::nanoseconds(0));
  // An armed, already-expired deadline reports its own category.
  ASSERT_TRUE(token.cancel_requested());
  CodecContext ctx;
  ctx.cancel = &token;
  EXPECT_EQ(code_of([&] { (void)ClizCompressor::decompress(stream, ctx); }),
            ErrorCode::kDeadlineExceeded);
}

TEST(CancelGovernor, ChunkedDecodeHonoursPoolToken) {
  const auto data = sample_field(16, 20, 18, 14);
  ChunkedOptions copts;
  copts.chunks = 8;
  const auto frame =
      chunked_compress(data, 1e-3, PipelineConfig::defaults(3), nullptr,
                       copts);
  CancelToken token;
  token.cancel();
  ChunkedScratch scratch;
  scratch.pool.set_governor(ResourceLimits{}, &token);
  EXPECT_EQ(code_of([&] { (void)chunked_decompress(frame, &scratch); }),
            ErrorCode::kCancelled);
}

TEST(CancelGovernor, AutotuneHonoursToken) {
  const auto data = sample_field(8, 12, 10, 15);
  CancelToken token;
  token.cancel();
  AutotuneOptions opts;
  opts.codec.cancel = &token;
  EXPECT_EQ(code_of([&] { (void)autotune(data, 1e-3, nullptr, opts); }),
            ErrorCode::kCancelled);
}

TEST(CancelGovernor, CompressorAdapterSetCancel) {
  const auto data = sample_field(8, 12, 10, 16);
  const auto comp = make_compressor("cliz");
  CancelToken token;
  token.cancel();
  comp->set_cancel(&token);
  EXPECT_EQ(code_of([&] { (void)comp->compress(data, 1e-3); }),
            ErrorCode::kCancelled);
  // Detaching the token restores normal operation on the same instance.
  comp->set_cancel(nullptr);
  const auto stream = comp->compress(data, 1e-3);
  EXPECT_NO_THROW((void)comp->decompress(stream));
}

TEST(CancelGovernor, HammerRacingCancelAgainstChunkedDecode) {
  // Race cancel() at staggered offsets against a multi-chunk parallel
  // decode: every iteration must end in a bit-exact result or a clean
  // kCancelled — and the worker pool must stay usable afterwards. Under
  // ASan/TSan this doubles as the leak/race check for the abort path.
  const auto data = sample_field(32, 24, 20, 17);
  ChunkedOptions copts;
  copts.chunks = 8;
  const auto frame =
      chunked_compress(data, 1e-3, PipelineConfig::defaults(3), nullptr,
                       copts);
  const auto pristine = chunked_decompress(frame);
  ASSERT_TRUE(pristine.shape() == data.shape());

  std::size_t cancelled = 0;
  constexpr int kRounds = 24;
  for (int round = 0; round < kRounds; ++round) {
    CancelToken token;
    ChunkedScratch scratch;
    scratch.pool.set_governor(ResourceLimits{}, &token);
    // Stagger the cancel across the decode's lifetime, round-robin from
    // "immediately" to "well after it finished".
    const auto delay = std::chrono::microseconds(50 * (round % 12));
    // The zero-delay rounds cancel BEFORE the decode starts: a guaranteed
    // abort that keeps the "some rounds must cancel" assertion below
    // deterministic no matter how fast the decode finishes or how late the
    // killer thread gets scheduled.
    if (delay.count() == 0) token.cancel();
    std::thread killer([&token, delay] {
      if (delay.count() == 0) return;
      std::this_thread::sleep_for(delay);
      token.cancel();
    });
    try {
      const auto out = chunked_decompress(frame, &scratch);
      ASSERT_TRUE(out.shape() == pristine.shape());
      EXPECT_EQ(std::memcmp(out.flat().data(), pristine.flat().data(),
                            out.size() * sizeof(float)),
                0)
          << "round " << round << ": decode raced to a torn result";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCancelled) << e.what();
      ++cancelled;
    }
    killer.join();
  }
  // With an immediate cancel in the rotation at least some rounds must
  // abort; if none did, the token was never consulted.
  EXPECT_GT(cancelled, 0u);

  // The abort path must not poison later decodes.
  EXPECT_NO_THROW((void)chunked_decompress(frame));
}

}  // namespace
}  // namespace cliz
