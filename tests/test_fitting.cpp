#include "src/predictor/fitting.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>

namespace cliz {
namespace {

/// Evaluates the fit at reference positions -3, -1, +1, +3 (target at 0).
double apply_fit(const CubicFit& fit, const std::array<double, 4>& d) {
  double p = 0.0;
  for (int i = 0; i < 4; ++i) p += fit.p[i] * d[i];
  return p;
}

TEST(Fitting, AllValidMatchesFormulaOne) {
  const CubicFit& f = cubic_fit(0xF);
  EXPECT_DOUBLE_EQ(f.p[0], -1.0 / 16.0);
  EXPECT_DOUBLE_EQ(f.p[1], 9.0 / 16.0);
  EXPECT_DOUBLE_EQ(f.p[2], 9.0 / 16.0);
  EXPECT_DOUBLE_EQ(f.p[3], -1.0 / 16.0);
}

TEST(Fitting, TableTwoRowsMatchPaper) {
  // Paper Table II: validity -> coefficients with one masked reference.
  {
    const CubicFit& f = cubic_fit(0b1110);  // v0 = 0
    EXPECT_DOUBLE_EQ(f.p[0], 0.0);
    EXPECT_DOUBLE_EQ(f.p[1], 3.0 / 8.0);
    EXPECT_DOUBLE_EQ(f.p[2], 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(f.p[3], -1.0 / 8.0);
  }
  {
    const CubicFit& f = cubic_fit(0b1101);  // v1 = 0
    EXPECT_DOUBLE_EQ(f.p[0], 1.0 / 8.0);
    EXPECT_DOUBLE_EQ(f.p[1], 0.0);
    EXPECT_DOUBLE_EQ(f.p[2], 9.0 / 8.0);
    EXPECT_DOUBLE_EQ(f.p[3], -1.0 / 4.0);
  }
  {
    const CubicFit& f = cubic_fit(0b1011);  // v2 = 0
    EXPECT_DOUBLE_EQ(f.p[0], -1.0 / 4.0);
    EXPECT_DOUBLE_EQ(f.p[1], 9.0 / 8.0);
    EXPECT_DOUBLE_EQ(f.p[2], 0.0);
    EXPECT_DOUBLE_EQ(f.p[3], 1.0 / 8.0);
  }
  {
    const CubicFit& f = cubic_fit(0b0111);  // v3 = 0
    EXPECT_DOUBLE_EQ(f.p[0], -1.0 / 8.0);
    EXPECT_DOUBLE_EQ(f.p[1], 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(f.p[2], 3.0 / 8.0);
    EXPECT_DOUBLE_EQ(f.p[3], 0.0);
  }
}

TEST(Fitting, InvalidReferencesNeverContribute) {
  for (unsigned mask = 0; mask < 16; ++mask) {
    const CubicFit& f = cubic_fit(mask);
    for (unsigned i = 0; i < 4; ++i) {
      if (((mask >> i) & 1u) == 0) {
        EXPECT_EQ(f.p[i], 0.0) << "mask=" << mask << " i=" << i;
      }
    }
  }
}

TEST(Fitting, CoefficientsSumToOneWheneverAnyReferenceIsValid) {
  // Exact reproduction of constant fields, for every validity pattern.
  for (unsigned mask = 1; mask < 16; ++mask) {
    const CubicFit& f = cubic_fit(mask);
    double sum = 0.0;
    for (int i = 0; i < 4; ++i) sum += f.p[i];
    EXPECT_NEAR(sum, 1.0, 1e-12) << "mask=" << mask;
  }
}

TEST(Fitting, ZeroValidPredictsZero) {
  const CubicFit& f = cubic_fit(0);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(f.p[i], 0.0);
}

class PolynomialReproduction : public ::testing::TestWithParam<int> {};

TEST_P(PolynomialReproduction, FullCubicFitIsExactUpToDegreeThree) {
  const int degree = GetParam();
  // Samples of t^degree at t = -3, -1, +1, +3; the cubic fit must predict
  // the value at t = 0 (i.e. 0 for degree >= 1, 1 for degree 0).
  const std::array<double, 4> pos{-3.0, -1.0, 1.0, 3.0};
  std::array<double, 4> d{};
  for (int i = 0; i < 4; ++i) d[i] = std::pow(pos[i], degree);
  const double expected = degree == 0 ? 1.0 : 0.0;
  EXPECT_NEAR(apply_fit(cubic_fit(0xF), d), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolynomialReproduction,
                         ::testing::Values(0, 1, 2, 3));

TEST(Fitting, OneMaskedFitIsExactUpToDegreeTwo) {
  // Per the paper, one masked reference degrades cubic to a quadratic fit:
  // it must still reproduce polynomials of degree <= 2 exactly.
  const std::array<double, 4> pos{-3.0, -1.0, 1.0, 3.0};
  for (unsigned missing = 0; missing < 4; ++missing) {
    const unsigned mask = 0xFu & ~(1u << missing);
    for (int degree = 0; degree <= 2; ++degree) {
      std::array<double, 4> d{};
      for (int i = 0; i < 4; ++i) d[i] = std::pow(pos[i], degree);
      const double expected = degree == 0 ? 1.0 : 0.0;
      EXPECT_NEAR(apply_fit(cubic_fit(mask), d), expected, 1e-12)
          << "missing=" << missing << " degree=" << degree;
    }
  }
}

TEST(Fitting, EveryTwoValidSubsetIsExactlyLinear) {
  // Whatever pair of references survives the mask, the Theorem-1
  // coefficients must reproduce linear functions exactly (the degradation
  // path the paper describes for 2 valid points).
  const std::array<double, 4> pos{-3.0, -1.0, 1.0, 3.0};
  for (unsigned mask = 0; mask < 16; ++mask) {
    if (std::popcount(mask) != 2) continue;
    for (int degree = 0; degree <= 1; ++degree) {
      std::array<double, 4> d{};
      for (int i = 0; i < 4; ++i) d[i] = std::pow(pos[i], degree);
      const double expected = degree == 0 ? 1.0 : 0.0;
      EXPECT_NEAR(apply_fit(cubic_fit(mask), d), expected, 1e-12)
          << "mask=" << mask << " degree=" << degree;
    }
  }
}

TEST(Fitting, TwoValidMiddleRefsReduceToLinearAverage) {
  const CubicFit& f = cubic_fit(0b0110);  // only d1, d2 valid
  EXPECT_DOUBLE_EQ(f.p[1], 0.5);
  EXPECT_DOUBLE_EQ(f.p[2], 0.5);
}

TEST(Fitting, SingleValidRefCopiesIt) {
  for (unsigned i = 0; i < 4; ++i) {
    const CubicFit& f = cubic_fit(1u << i);
    EXPECT_DOUBLE_EQ(f.p[i], 1.0) << "i=" << i;
  }
}

TEST(Fitting, LinearFitCases) {
  EXPECT_EQ(linear_fit(true, true), (std::array<double, 2>{0.5, 0.5}));
  EXPECT_EQ(linear_fit(true, false), (std::array<double, 2>{1.0, 0.0}));
  EXPECT_EQ(linear_fit(false, true), (std::array<double, 2>{0.0, 1.0}));
  EXPECT_EQ(linear_fit(false, false), (std::array<double, 2>{0.0, 0.0}));
}

}  // namespace
}  // namespace cliz
