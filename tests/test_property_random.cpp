// Randomized property tests: for a few hundred randomly drawn
// (shape, mask, pipeline, bound, data texture) combinations, the full
// CliZ codec must round-trip within the bound, reproduce fill values at
// masked points, and stay deterministic. Seeds are fixed, so failures are
// reproducible; the sweep goes far beyond the hand-picked cases in
// test_cliz.cpp.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <string>

#include "src/common/rng.hpp"
#include "src/core/cliz.hpp"
#include "src/core/codec_context.hpp"
#include "src/metrics/metrics.hpp"
#include "src/ndarray/layout.hpp"

namespace cliz {
namespace {

struct RandomCase {
  Shape shape{DimVec{1}};
  NdArray<float> data{Shape{DimVec{1}}};
  std::optional<MaskMap> mask;
  PipelineConfig config = PipelineConfig::defaults(1);
  ClizOptions options;
  double eb = 1e-3;
};

RandomCase draw_case(std::uint64_t seed) {
  Rng rng(seed);
  RandomCase c;

  // Shape: 1-4 dims, total size <= ~40k.
  const std::size_t nd = 1 + rng.uniform_index(4);
  DimVec dims(nd);
  for (auto& d : dims) d = 1 + rng.uniform_index(nd >= 3 ? 16 : 64);
  c.shape = Shape(dims);
  c.data = NdArray<float>(c.shape);

  // Data: mix of smooth waves, trends, periodic cycles and noise with a
  // random magnitude scale.
  const double scale = std::pow(10.0, rng.uniform(-2.0, 4.0));
  const double noise = rng.uniform(0.0, 0.2);
  const std::size_t period = 4 + rng.uniform_index(8);
  for (std::size_t i = 0; i < c.data.size(); ++i) {
    const auto coords = c.shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < nd; ++d) {
      v += std::sin(rng.uniform(0.02, 0.1) * 0 +
                    0.1 * static_cast<double>(coords[d]) +
                    static_cast<double>(d));
    }
    v += std::cos(2.0 * std::numbers::pi *
                  static_cast<double>(coords[0] % period) /
                  static_cast<double>(period));
    c.data[i] = static_cast<float>(scale * (v + noise * rng.normal()));
  }

  // Mask: none / random blobs / rows, with fill values planted.
  const auto mask_kind = rng.uniform_index(3);
  if (mask_kind > 0) {
    c.mask = MaskMap::all_valid(c.shape);
    const double invalid_frac = rng.uniform(0.05, 0.6);
    for (std::size_t i = 0; i < c.data.size(); ++i) {
      const bool invalid =
          mask_kind == 1
              ? rng.uniform() < invalid_frac
              : (i / std::max<std::size_t>(1, c.shape.dims().back())) % 3 == 0;
      if (invalid) {
        c.mask->mutable_data()[i] = 0;
        c.data[i] = 9.96921e36f;
      }
    }
  }

  // Pipeline: random permutation, fusion, fitting, periodicity, classify.
  const auto perms = all_permutations(nd);
  const auto fusions = all_fusions(nd);
  c.config.permutation = perms[rng.uniform_index(perms.size())];
  c.config.fusion = fusions[rng.uniform_index(fusions.size())];
  c.config.fitting =
      rng.uniform() < 0.5 ? FittingKind::kLinear : FittingKind::kCubic;
  c.config.dynamic_fitting = rng.uniform() < 0.7;
  c.config.classify_bins = rng.uniform() < 0.5;
  c.config.time_dim = 0;
  c.config.period = rng.uniform() < 0.4 ? period : 0;

  c.options.classify = ClassifyParams{
      static_cast<unsigned>(rng.uniform_index(3)),
      static_cast<unsigned>(rng.uniform_index(3))};
  c.eb = scale * std::pow(10.0, rng.uniform(-5.0, -1.0));
  return c;
}

class RandomPipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPipelineFuzz, RoundTripHoldsBoundAndFills) {
  for (std::uint64_t i = 0; i < 40; ++i) {
    const std::uint64_t seed = GetParam() * 1000 + i;
    const RandomCase c = draw_case(seed);
    const MaskMap* mask = c.mask.has_value() ? &*c.mask : nullptr;

    const ClizCompressor codec(c.config, c.options);
    const auto stream = codec.compress(c.data, c.eb, mask);
    const auto recon = ClizCompressor::decompress(stream);

    ASSERT_EQ(recon.shape(), c.data.shape()) << "seed " << seed;
    const auto stats = error_stats(c.data.flat(), recon.flat(), mask);
    ASSERT_LE(stats.max_abs_error, c.eb)
        << "seed " << seed << " config " << c.config.label();
    if (mask != nullptr) {
      for (std::size_t p = 0; p < recon.size(); ++p) {
        if (!mask->valid(p)) {
          ASSERT_EQ(recon[p], c.options.fill_value) << "seed " << seed;
        }
      }
    }

    // Determinism.
    ASSERT_EQ(codec.compress(c.data, c.eb, mask), stream)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- framed/serial differential harness ----------------------------------
// For randomized cases and EVERY registered (predictor, entropy, lossless)
// triple, the per-pass framed container must reconstruct bit-identically to
// the serial one: framing repartitions the entropy payload, it never
// changes a single decoded value.

class FramedDifferentialFuzz
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FramedDifferentialFuzz, FramedDecodeMatchesSerialBitExactly) {
  constexpr PredictorBackend kPredictors[] = {
      PredictorBackend::kInterp,
      PredictorBackend::kLorenzo1,
      PredictorBackend::kLorenzo2,
      PredictorBackend::kRegression,
  };
  constexpr EntropyBackend kEntropies[] = {EntropyBackend::kHuffman,
                                           EntropyBackend::kTans};
  constexpr LosslessBackend kLossless[] = {LosslessBackend::kLz,
                                           LosslessBackend::kStore};
  for (std::uint64_t i = 0; i < 6; ++i) {
    const std::uint64_t seed = 77000 + GetParam() * 100 + i;
    const RandomCase c = draw_case(seed);
    const MaskMap* mask = c.mask.has_value() ? &*c.mask : nullptr;
    for (const PredictorBackend predictor : kPredictors) {
      for (const EntropyBackend entropy : kEntropies) {
        for (const LosslessBackend lossless : kLossless) {
          ClizOptions serial = c.options;
          serial.predictor = predictor;
          serial.entropy = entropy;
          serial.lossless = lossless;
          ClizOptions framed = serial;
          framed.frame_passes = true;
          SCOPED_TRACE(std::string("seed ") + std::to_string(seed) +
                       " predictor=" + predictor_backend_name(predictor) +
                       " entropy=" + entropy_backend_name(entropy) +
                       " lossless=" + lossless_backend_name(lossless));

          const auto serial_stream =
              ClizCompressor(c.config, serial).compress(c.data, c.eb, mask);
          CodecContext cctx;
          const auto framed_stream = ClizCompressor(c.config, framed)
                                         .compress(c.data, c.eb, mask, cctx);
          ASSERT_TRUE(cctx.stats.frame_passes);

          const auto serial_out =
              ClizCompressor::decompress(serial_stream);
          CodecContext dctx;
          const auto framed_out =
              ClizCompressor::decompress(framed_stream, dctx);
          ASSERT_TRUE(dctx.stats.frame_passes);
          ASSERT_EQ(framed_out.shape(), serial_out.shape());
          for (std::size_t p = 0; p < framed_out.size(); ++p) {
            // Bit-exact, NaN-safe comparison.
            ASSERT_EQ(std::bit_cast<std::uint32_t>(framed_out[p]),
                      std::bit_cast<std::uint32_t>(serial_out[p]))
                << "value " << p;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FramedDifferentialFuzz,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace cliz
