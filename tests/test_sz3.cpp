#include "src/sz3/sz3.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

NdArray<float> smooth_array(const DimVec& dims, std::uint64_t seed,
                            double noise = 0.01) {
  const Shape shape(dims);
  NdArray<float> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 280.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += 5.0 * std::sin(0.08 * static_cast<double>(c[d]) +
                          static_cast<double>(d));
    }
    a[i] = static_cast<float>(v + noise * rng.normal());
  }
  return a;
}

struct Sz3Case {
  DimVec dims;
  double eb;
};

class Sz3RoundTrip : public ::testing::TestWithParam<Sz3Case> {};

TEST_P(Sz3RoundTrip, BoundHoldsEverywhere) {
  const auto& [dims, eb] = GetParam();
  const auto data = smooth_array(dims, 11);
  const Sz3Compressor codec;
  const auto stream = codec.compress(data, eb);
  const auto recon = Sz3Compressor::decompress(stream);
  ASSERT_EQ(recon.shape(), data.shape());
  const auto stats = error_stats(data.flat(), recon.flat());
  EXPECT_LE(stats.max_abs_error, eb);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Sz3RoundTrip,
    ::testing::Values(Sz3Case{{100}, 1e-2}, Sz3Case{{100}, 1e-5},
                      Sz3Case{{48, 52}, 1e-2}, Sz3Case{{48, 52}, 1e-4},
                      Sz3Case{{16, 20, 24}, 1e-3},
                      Sz3Case{{16, 20, 24}, 1.0},
                      Sz3Case{{7, 9, 11}, 1e-2},
                      Sz3Case{{4, 5, 6, 7}, 1e-3},
                      Sz3Case{{1, 64}, 1e-3}, Sz3Case{{64, 1}, 1e-3}));

TEST(Sz3, SmoothDataCompressesWell) {
  const auto data = smooth_array({40, 40, 40}, 3, 0.0);
  const auto stream = Sz3Compressor().compress(data, 1e-3);
  const double ratio = compression_ratio(data.size() * 4, stream.size());
  EXPECT_GT(ratio, 8.0);
}

TEST(Sz3, RandomNoiseStillBounded) {
  const Shape shape({32, 32});
  NdArray<float> data(shape);
  Rng rng(4);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(rng.normal() * 100.0);
  }
  const auto stream = Sz3Compressor().compress(data, 0.5);
  const auto recon = Sz3Compressor::decompress(stream);
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 0.5);
}

TEST(Sz3, TighterBoundCostsMoreBits) {
  const auto data = smooth_array({32, 32, 32}, 5);
  const auto loose = Sz3Compressor().compress(data, 1e-1);
  const auto tight = Sz3Compressor().compress(data, 1e-4);
  EXPECT_LT(loose.size(), tight.size());
}

TEST(Sz3, ForcedFittingRoundTrips) {
  const auto data = smooth_array({30, 30}, 6);
  for (const FittingKind fit : {FittingKind::kLinear, FittingKind::kCubic}) {
    Sz3Options opts;
    opts.force_fitting = true;
    opts.fitting = fit;
    const auto stream = Sz3Compressor(opts).compress(data, 1e-3);
    const auto recon = Sz3Compressor::decompress(stream);
    EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
  }
}

TEST(Sz3, ConstantFieldNearlyFree) {
  NdArray<float> data(Shape({64, 64}));
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = 42.0f;
  const auto stream = Sz3Compressor().compress(data, 1e-6);
  EXPECT_LT(stream.size(), 600u);
  const auto recon = Sz3Compressor::decompress(stream);
  for (std::size_t i = 0; i < recon.size(); ++i) {
    EXPECT_NEAR(recon[i], 42.0f, 1e-6);
  }
}

TEST(Sz3, SinglePointArray) {
  NdArray<float> data(Shape({1}));
  data[0] = 3.5f;
  const auto stream = Sz3Compressor().compress(data, 1e-3);
  const auto recon = Sz3Compressor::decompress(stream);
  EXPECT_NEAR(recon[0], 3.5f, 1e-3);
}

TEST(Sz3, RejectsNonPositiveBound) {
  const auto data = smooth_array({8}, 1);
  EXPECT_THROW((void)Sz3Compressor().compress(data, 0.0), Error);
  EXPECT_THROW((void)Sz3Compressor().compress(data, -1.0), Error);
}

TEST(Sz3, CorruptStreamThrows) {
  const auto data = smooth_array({16, 16}, 2);
  auto stream = Sz3Compressor().compress(data, 1e-3);
  auto truncated = stream;
  truncated.resize(truncated.size() / 3);
  EXPECT_THROW((void)Sz3Compressor::decompress(truncated), Error);
  EXPECT_THROW((void)Sz3Compressor::decompress({}), Error);
}

TEST(Sz3, WrongMagicThrows) {
  std::vector<std::uint8_t> junk{'n', 'o', 't', 'a', 's', 't', 'r', 'e',
                                 'a', 'm'};
  EXPECT_THROW((void)Sz3Compressor::decompress(junk), Error);
}

TEST(Sz3, DeterministicOutput) {
  const auto data = smooth_array({20, 20}, 7);
  const auto a = Sz3Compressor().compress(data, 1e-3);
  const auto b = Sz3Compressor().compress(data, 1e-3);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cliz
