#include "src/core/bin_classify.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"

namespace cliz {
namespace {

constexpr std::uint32_t kRadius = 1u << 15;

/// Builds (offsets, codes) for a single column repeated over snapshots.
struct Stream {
  std::vector<std::uint64_t> offsets;
  std::vector<std::uint32_t> codes;

  void add(std::size_t column, std::size_t plane, int bin, int count) {
    for (int i = 0; i < count; ++i) {
      offsets.push_back(offsets.size() * plane + column);
      codes.push_back(static_cast<std::uint32_t>(
          static_cast<std::int64_t>(kRadius) + bin));
    }
  }
};

TEST(BinClassify, DetectsPositiveShift) {
  Stream s;
  const std::size_t plane = 4;
  s.add(0, plane, 1, 80);   // column 0 peaks at bin +1
  s.add(0, plane, 0, 10);
  s.add(1, plane, 0, 90);   // column 1 peaks at bin 0
  const auto c = BinClassification::build(s.offsets, s.codes, plane, kRadius);
  EXPECT_EQ(c.shift_of(0), 1);
  EXPECT_EQ(c.shift_of(1), 0);
  EXPECT_FALSE(c.dispersed(0));
  EXPECT_FALSE(c.dispersed(1));
}

TEST(BinClassify, DetectsNegativeShift) {
  Stream s;
  const std::size_t plane = 2;
  s.add(1, plane, -1, 70);
  s.add(1, plane, 0, 20);
  const auto c = BinClassification::build(s.offsets, s.codes, plane, kRadius);
  EXPECT_EQ(c.shift_of(1), -1);
}

TEST(BinClassify, DispersionBelowLambdaRoutesToSecondTree) {
  Stream s;
  const std::size_t plane = 2;
  // Column 0: peak frequency 30/100 < 0.4 -> dispersed.
  s.add(0, plane, 0, 30);
  s.add(0, plane, 2, 25);
  s.add(0, plane, -3, 25);
  s.add(0, plane, 5, 20);
  // Column 1: peak frequency 0.9 -> peaked.
  s.add(1, plane, 0, 90);
  s.add(1, plane, 1, 10);
  const auto c = BinClassification::build(s.offsets, s.codes, plane, kRadius);
  EXPECT_TRUE(c.dispersed(0));
  EXPECT_FALSE(c.dispersed(1));
  EXPECT_EQ(c.count_dispersed(), 1u);
}

TEST(BinClassify, LambdaBoundaryIsExclusive) {
  // Peak exactly at 0.4 must NOT be dispersed (threshold is strict <).
  Stream s;
  const std::size_t plane = 1;
  s.add(0, plane, 0, 40);
  s.add(0, plane, 3, 30);
  s.add(0, plane, -4, 30);
  const auto c = BinClassification::build(s.offsets, s.codes, plane, kRadius);
  EXPECT_FALSE(c.dispersed(0));
}

TEST(BinClassify, OutlierEscapesIgnoredInStatistics) {
  Stream s;
  const std::size_t plane = 1;
  s.add(0, plane, 1, 10);
  // Outlier escapes (code 0) must not count toward any bin.
  for (int i = 0; i < 50; ++i) {
    s.offsets.push_back(s.offsets.size());
    s.codes.push_back(0);
  }
  const auto c = BinClassification::build(s.offsets, s.codes, plane, kRadius);
  EXPECT_EQ(c.shift_of(0), 1);
  EXPECT_FALSE(c.dispersed(0));  // 10/10 of the non-outlier codes peak at +1
}

TEST(BinClassify, EmptyColumnDefaultsToNoShiftPeaked) {
  Stream s;
  const std::size_t plane = 3;
  s.add(0, plane, 0, 5);
  // Columns 1 and 2 receive nothing.
  const auto c = BinClassification::build(s.offsets, s.codes, plane, kRadius);
  EXPECT_EQ(c.shift_of(1), 0);
  EXPECT_FALSE(c.dispersed(1));
  EXPECT_EQ(c.shift_of(2), 0);
}

TEST(BinClassify, SerializeRoundTrip) {
  Stream s;
  const std::size_t plane = 8;
  Rng rng(3);
  for (std::size_t col = 0; col < plane; ++col) {
    s.add(col, plane, static_cast<int>(rng.uniform_index(3)) - 1,
          20 + static_cast<int>(rng.uniform_index(50)));
    s.add(col, plane, static_cast<int>(rng.uniform_index(9)) - 4,
          static_cast<int>(rng.uniform_index(60)));
  }
  const auto c = BinClassification::build(s.offsets, s.codes, plane, kRadius);
  ByteWriter w;
  c.serialize(w);
  ByteReader r(w.bytes());
  const auto back = BinClassification::deserialize(r);
  ASSERT_EQ(back.plane_size(), plane);
  for (std::size_t col = 0; col < plane; ++col) {
    EXPECT_EQ(back.shift_of(col), c.shift_of(col));
    EXPECT_EQ(back.dispersed(col), c.dispersed(col));
  }
}

TEST(BinClassify, DeserializeRejectsCorruptEntries) {
  ByteWriter w;
  w.put_varint(2);
  w.put_u8(3);
  w.put_u8(7);  // valid entries are < 6
  ByteReader r(w.bytes());
  EXPECT_THROW((void)BinClassification::deserialize(r), Error);
}

TEST(BinClassify, MismatchedArityThrows) {
  std::vector<std::uint64_t> offsets(3);
  std::vector<std::uint32_t> codes(2);
  EXPECT_THROW(
      (void)BinClassification::build(offsets, codes, 2, kRadius), Error);
}

TEST(BinClassify, GeneralizedShiftRadiusDetectsWiderPeaks) {
  Stream s;
  const std::size_t plane = 3;
  s.add(0, plane, 2, 70);   // peak at +2: only found with j >= 2
  s.add(0, plane, 0, 20);
  s.add(1, plane, -2, 60);
  s.add(1, plane, 1, 30);
  s.add(2, plane, 0, 50);

  const auto c1 = BinClassification::build(s.offsets, s.codes, plane,
                                           kRadius, ClassifyParams{1, 1});
  EXPECT_EQ(c1.shift_of(0), 0);  // +2 invisible at j = 1

  const auto c2 = BinClassification::build(s.offsets, s.codes, plane,
                                           kRadius, ClassifyParams{2, 1});
  EXPECT_EQ(c2.shift_of(0), 2);
  EXPECT_EQ(c2.shift_of(1), -2);
  EXPECT_EQ(c2.shift_of(2), 0);
}

TEST(BinClassify, GeneralizedDispersionLevels) {
  Stream s;
  const std::size_t plane = 3;
  // Column 0: peak 0.9 -> group 0 at any k.
  s.add(0, plane, 0, 90);
  s.add(0, plane, 5, 10);
  // Column 1: peak 0.3 (in [0.2, 0.4)) -> group 1 with k = 2.
  s.add(1, plane, 0, 30);
  s.add(1, plane, 4, 25);
  s.add(1, plane, -5, 25);
  s.add(1, plane, 7, 20);
  // Column 2: peak 0.1 (< 0.2) -> group 2 with k = 2.
  s.add(2, plane, 0, 10);
  for (int b = 2; b <= 10; ++b) s.add(2, plane, b, 10);

  const auto c = BinClassification::build(s.offsets, s.codes, plane, kRadius,
                                          ClassifyParams{1, 2});
  EXPECT_EQ(c.group_of(0), 0u);
  EXPECT_EQ(c.group_of(1), 1u);
  EXPECT_EQ(c.group_of(2), 2u);
  EXPECT_EQ(c.params().group_types(), 3u);
}

TEST(BinClassify, GeneralizedSerializeRoundTrip) {
  Stream s;
  const std::size_t plane = 6;
  Rng rng(9);
  for (std::size_t col = 0; col < plane; ++col) {
    s.add(col, plane, static_cast<int>(rng.uniform_index(5)) - 2, 40);
    s.add(col, plane, static_cast<int>(rng.uniform_index(11)) - 5,
          static_cast<int>(rng.uniform_index(80)));
  }
  const auto c = BinClassification::build(s.offsets, s.codes, plane, kRadius,
                                          ClassifyParams{2, 3});
  ByteWriter w;
  c.serialize(w);
  ByteReader r(w.bytes());
  const auto back = BinClassification::deserialize(r);
  EXPECT_EQ(back.params().j, 2u);
  EXPECT_EQ(back.params().k, 3u);
  for (std::size_t col = 0; col < plane; ++col) {
    EXPECT_EQ(back.shift_of(col), c.shift_of(col));
    EXPECT_EQ(back.group_of(col), c.group_of(col));
  }
}

TEST(BinClassify, OversizedParamsRejected) {
  std::vector<std::uint64_t> offsets{0};
  std::vector<std::uint32_t> codes{kRadius};
  EXPECT_THROW((void)BinClassification::build(offsets, codes, 1, kRadius,
                                              ClassifyParams{9, 1}),
               Error);
  EXPECT_THROW((void)BinClassification::build(offsets, codes, 1, kRadius,
                                              ClassifyParams{1, 9}),
               Error);
}

TEST(BinClassify, CountShifted) {
  Stream s;
  const std::size_t plane = 3;
  s.add(0, plane, 1, 50);
  s.add(1, plane, -1, 50);
  s.add(2, plane, 0, 50);
  const auto c = BinClassification::build(s.offsets, s.codes, plane, kRadius);
  EXPECT_EQ(c.count_shifted(), 2u);
}

}  // namespace
}  // namespace cliz
