#include "src/predictor/interp_traversal.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "src/ndarray/layout.hpp"
#include "src/ndarray/shape.hpp"

namespace cliz {
namespace {

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> o(n);
  std::iota(o.begin(), o.end(), std::size_t{0});
  return o;
}

struct ShapeCase {
  DimVec dims;
};

class TraversalCoverage : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(TraversalCoverage, EveryNonAnchorPointVisitedExactlyOnce) {
  const Shape shape(GetParam().dims);
  const auto axes = fused_axes(shape, FusionSpec::none(shape.ndims()));
  const auto order = identity_order(shape.ndims());

  std::vector<int> visits(shape.size(), 0);
  interp_traverse(axes, order,
                  [&](std::size_t off, std::size_t, std::size_t,
                      const InterpRefs&) {
                    ASSERT_LT(off, shape.size());
                    ++visits[off];
                  });
  EXPECT_EQ(visits[0], 0) << "anchor must not be visited";
  for (std::size_t i = 1; i < shape.size(); ++i) {
    EXPECT_EQ(visits[i], 1) << "offset " << i << " in " << shape.to_string();
  }
}

TEST_P(TraversalCoverage, ReferencesAlwaysPrecedeTargets) {
  const Shape shape(GetParam().dims);
  const auto axes = fused_axes(shape, FusionSpec::none(shape.ndims()));
  const auto order = identity_order(shape.ndims());

  std::set<std::size_t> known{0};  // anchor known from the start
  interp_traverse(axes, order,
                  [&](std::size_t off, std::size_t, std::size_t,
                      const InterpRefs& refs) {
                    for (int i = 0; i < 4; ++i) {
                      if (refs.in_range[i]) {
                        EXPECT_TRUE(known.contains(refs.offset[i]))
                            << "target " << off << " references unknown "
                            << refs.offset[i];
                      }
                    }
                    known.insert(off);
                  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TraversalCoverage,
    ::testing::Values(ShapeCase{{2}}, ShapeCase{{3}}, ShapeCase{{17}},
                      ShapeCase{{64}}, ShapeCase{{5, 7}}, ShapeCase{{8, 8}},
                      ShapeCase{{1, 9}}, ShapeCase{{9, 1}},
                      ShapeCase{{4, 5, 6}}, ShapeCase{{7, 1, 3}},
                      ShapeCase{{2, 2, 2, 2}}, ShapeCase{{3, 4, 2, 5}},
                      ShapeCase{{31, 33}}, ShapeCase{{1, 1, 1}}));

TEST(Traversal, SinglePointHasNoTargets) {
  const Shape shape({1});
  const auto axes = fused_axes(shape, FusionSpec::none(1));
  const auto order = identity_order(1);
  std::size_t count = 0;
  interp_traverse(axes, order,
                  [&](std::size_t, std::size_t, std::size_t,
                      const InterpRefs&) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(Traversal, PassOrderChangesAxisSchedule) {
  const Shape shape({8, 8});
  const auto axes = fused_axes(shape, FusionSpec::none(2));
  const std::vector<std::size_t> fwd{0, 1};
  const std::vector<std::size_t> rev{1, 0};
  std::vector<std::size_t> axes_fwd;
  std::vector<std::size_t> axes_rev;
  interp_traverse(axes, fwd,
                  [&](std::size_t, std::size_t axis, std::size_t,
                      const InterpRefs&) { axes_fwd.push_back(axis); });
  interp_traverse(axes, rev,
                  [&](std::size_t, std::size_t axis, std::size_t,
                      const InterpRefs&) { axes_rev.push_back(axis); });
  EXPECT_EQ(axes_fwd.size(), axes_rev.size());
  EXPECT_NE(axes_fwd, axes_rev);
}

TEST(Traversal, LaterAxesInOrderGetMorePredictions) {
  // Paper VI-C: along the i-th dimension of the pass order, about
  // 2^(i-1)/(2^n - 1) of the predictions occur; the last axis dominates.
  const Shape shape({32, 32, 32});
  const auto axes = fused_axes(shape, FusionSpec::none(3));
  const auto order = identity_order(3);
  std::array<std::size_t, 3> counts{};
  interp_traverse(axes, order,
                  [&](std::size_t, std::size_t axis, std::size_t,
                      const InterpRefs&) { ++counts[axis]; });
  EXPECT_LT(counts[0], counts[1]);
  EXPECT_LT(counts[1], counts[2]);
  // Roughly 1:2:4.
  EXPECT_NEAR(static_cast<double>(counts[1]) / static_cast<double>(counts[0]),
              2.0, 0.3);
  EXPECT_NEAR(static_cast<double>(counts[2]) / static_cast<double>(counts[1]),
              2.0, 0.3);
}

TEST(Traversal, ReferenceGeometryMatchesCoordinates) {
  const Shape shape({16, 16});
  const auto axes = fused_axes(shape, FusionSpec::none(2));
  const auto order = identity_order(2);
  interp_traverse(
      axes, order,
      [&](std::size_t off, std::size_t axis, std::size_t h,
          const InterpRefs& refs) {
        const auto c = shape.coords(off);
        // Target coordinate along the pass axis is an odd multiple of h.
        EXPECT_EQ((c[axis] / h) % 2, 1u);
        const std::ptrdiff_t pos[4] = {-3, -1, 1, 3};
        for (int i = 0; i < 4; ++i) {
          const auto want =
              static_cast<std::ptrdiff_t>(c[axis]) +
              pos[i] * static_cast<std::ptrdiff_t>(h);
          const bool in =
              want >= 0 &&
              want < static_cast<std::ptrdiff_t>(shape.dim(axis));
          EXPECT_EQ(refs.in_range[i], in);
          if (in) {
            auto rc = c;
            rc[axis] = static_cast<std::size_t>(want);
            EXPECT_EQ(refs.offset[i], shape.offset(rc));
          }
        }
      });
}

TEST(Traversal, FusedAxesCoverEveryOffset) {
  const Shape shape({4, 6, 5});
  const FusionSpec fusion({{0, 1}, {2, 2}});
  const auto axes = fused_axes(shape, fusion);
  const std::vector<std::size_t> order{0, 1};
  std::vector<int> visits(shape.size(), 0);
  interp_traverse(axes, order,
                  [&](std::size_t off, std::size_t, std::size_t,
                      const InterpRefs&) { ++visits[off]; });
  EXPECT_EQ(visits[0], 0);
  for (std::size_t i = 1; i < shape.size(); ++i) {
    EXPECT_EQ(visits[i], 1) << "offset " << i;
  }
}

TEST(Traversal, PassVisitorCanRunPassTwice) {
  const Shape shape({8, 8});
  const auto axes = fused_axes(shape, FusionSpec::none(2));
  const auto order = identity_order(2);
  std::size_t first_run = 0;
  std::size_t second_run = 0;
  interp_traverse_passes(axes, order,
                         [&](std::size_t, std::size_t, std::size_t,
                             auto&& run) {
                           run([&](std::size_t, std::size_t, std::size_t,
                                   const InterpRefs&) { ++first_run; });
                           run([&](std::size_t, std::size_t, std::size_t,
                                   const InterpRefs&) { ++second_run; });
                         });
  EXPECT_EQ(first_run, shape.size() - 1);
  EXPECT_EQ(first_run, second_run);
}

TEST(Traversal, InvalidOrderThrows) {
  const Shape shape({4, 4});
  const auto axes = fused_axes(shape, FusionSpec::none(2));
  const std::vector<std::size_t> dup{0, 0};
  const std::vector<std::size_t> oob{0, 5};
  const auto noop = [](std::size_t, std::size_t, std::size_t,
                       const InterpRefs&) {};
  EXPECT_THROW(interp_traverse(axes, dup, noop), Error);
  EXPECT_THROW(interp_traverse(axes, oob, noop), Error);
}

TEST(Traversal, PointCountHelper) {
  const Shape shape({3, 4, 5});
  const auto axes = fused_axes(shape, FusionSpec::none(3));
  EXPECT_EQ(interp_point_count(axes), 59u);
}

}  // namespace
}  // namespace cliz
