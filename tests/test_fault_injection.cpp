// Fault-injection matrix over the committed golden corpus and a freshly
// written CLZA archive: every seeded bit flip, truncation, and splice must
// yield either a clean cliz::Error or output bit-identical to the pristine
// decode. Nothing else is acceptable — no crashes, no unbounded
// allocations, and above all no silently wrong data. ("Bit-identical" is a
// real outcome, not a loophole: a flip in unused trailing Huffman bits or
// in a section the decoder never reads changes nothing, and the CRC layer
// is entitled to wave such streams through.)
//
// Faults are deterministic functions of (stream, seed), so any failure
// reproduces from the printed case label.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unistd.h>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/chunked.hpp"
#include "src/core/cliz.hpp"
#include "src/io/archive.hpp"
#include "tests/fault_injection.hpp"

namespace cliz {
namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string golden_path(const char* file) {
  return std::string(CLIZ_GOLDEN_DIR) + "/" + file;
}

/// Bitwise equality of two decoded fields (shape and payload bytes).
bool bit_identical(const NdArray<float>& a, const NdArray<float>& b) {
  if (!(a.shape() == b.shape())) return false;
  return std::memcmp(a.flat().data(), b.flat().data(),
                     a.size() * sizeof(float)) == 0;
}

enum class Outcome { kCleanError, kIdentical, kSilentCorruption };

/// Decode a faulted frame with `decode` and classify the result against the
/// pristine decode. Any exception other than cliz::Error or std::bad_alloc
/// (length_error from a hostile resize, say) propagates and fails the test
/// loudly with the case label attached by the caller.
template <typename DecodeFn>
Outcome classify(const DecodeFn& decode,
                 const std::vector<std::uint8_t>& faulted,
                 const NdArray<float>& pristine) {
  try {
    const NdArray<float> out = decode(faulted);
    return bit_identical(out, pristine) ? Outcome::kIdentical
                                        : Outcome::kSilentCorruption;
  } catch (const Error&) {
    return Outcome::kCleanError;
  } catch (const std::bad_alloc&) {
    // An allocator refusal is a clean failure too, but the integrity layer
    // exists to cap untrusted sizes before they hit the allocator; treat a
    // bad_alloc as a budget violation so it shows up here.
    ADD_FAILURE() << "fault drove an unbounded allocation";
    return Outcome::kCleanError;
  }
}

/// classify() without the silent-corruption assertion, for checksum-less
/// v1 streams where a decodable-but-different result is allowed by design.
template <typename DecodeFn>
Outcome classify_nofail(const DecodeFn& decode,
                        const std::vector<std::uint8_t>& faulted,
                        const NdArray<float>& pristine) {
  try {
    const NdArray<float> out = decode(faulted);
    return bit_identical(out, pristine) ? Outcome::kIdentical
                                        : Outcome::kSilentCorruption;
  } catch (const Error&) {
    return Outcome::kCleanError;
  } catch (const std::bad_alloc&) {
    ADD_FAILURE() << "fault drove an unbounded allocation";
    return Outcome::kCleanError;
  }
}

struct MatrixTally {
  std::size_t clean = 0;
  std::size_t identical = 0;
};

/// Run every generated fault for one stream through `decode`.
template <typename DecodeFn>
MatrixTally run_matrix(const char* stream_name,
                       const std::vector<std::uint8_t>& stream,
                       const std::vector<std::uint8_t>& donor,
                       const DecodeFn& decode) {
  const NdArray<float> pristine = decode(stream);

  std::vector<fault::Fault> cases = fault::bit_flip_cases(stream, 160, 0xF1);
  auto truncs = fault::truncation_cases(stream, 40);
  cases.insert(cases.end(), std::make_move_iterator(truncs.begin()),
               std::make_move_iterator(truncs.end()));
  auto splices = fault::splice_cases(stream, donor, 24, 0xF2);
  cases.insert(cases.end(), std::make_move_iterator(splices.begin()),
               std::make_move_iterator(splices.end()));

  MatrixTally tally;
  for (const auto& f : cases) {
    SCOPED_TRACE(std::string(stream_name) + " " + f.label);
    switch (classify(decode, f.bytes, pristine)) {
      case Outcome::kCleanError:
        ++tally.clean;
        break;
      case Outcome::kIdentical:
        ++tally.identical;
        break;
      case Outcome::kSilentCorruption:
        ADD_FAILURE() << "decoded without error but produced wrong data";
        break;
    }
  }
  EXPECT_EQ(tally.clean + tally.identical, cases.size());
  // The corpus streams are dense enough that most faults land in live
  // sections; if almost everything sailed through "identical", the CRC
  // layer is not actually being exercised.
  EXPECT_GT(tally.clean, cases.size() / 2)
      << stream_name << ": too few faults detected";
  return tally;
}

const auto kClizDecode = [](const std::vector<std::uint8_t>& bytes) {
  return ClizCompressor::decompress(bytes);
};
const auto kChunkedDecode = [](const std::vector<std::uint8_t>& bytes) {
  return chunked_decompress(bytes);
};

TEST(FaultMatrix, PlainGoldenStream) {
  const auto stream = read_file(golden_path("golden_plain.cliz"));
  const auto donor = read_file(golden_path("golden_periodic.cliz"));
  ASSERT_FALSE(stream.empty());
  run_matrix("golden_plain", stream, donor, kClizDecode);
}

TEST(FaultMatrix, MaskedGoldenStream) {
  const auto stream = read_file(golden_path("golden_masked.cliz"));
  const auto donor = read_file(golden_path("golden_plain.cliz"));
  ASSERT_FALSE(stream.empty());
  run_matrix("golden_masked", stream, donor, kClizDecode);
}

TEST(FaultMatrix, PeriodicGoldenStream) {
  const auto stream = read_file(golden_path("golden_periodic.cliz"));
  const auto donor = read_file(golden_path("golden_masked.cliz"));
  ASSERT_FALSE(stream.empty());
  run_matrix("golden_periodic", stream, donor, kClizDecode);
}

TEST(FaultMatrix, ChunkedGoldenFrame) {
  const auto stream = read_file(golden_path("golden_chunked.clks"));
  const auto donor = read_file(golden_path("golden_plain.cliz"));
  ASSERT_FALSE(stream.empty());
  run_matrix("golden_chunked", stream, donor, kChunkedDecode);
}

// Checksum-less v1 frames predate the integrity layer, so "detect every
// flip" is off the table — but hostile bytes must still never crash or
// allocate unboundedly, and shape mismatches must still throw cleanly.
TEST(FaultMatrix, V1StreamsNeverCrash) {
  for (const char* name :
       {"v1_plain.cliz", "v1_masked.cliz", "v1_periodic.cliz"}) {
    const auto stream = read_file(golden_path(name));
    ASSERT_FALSE(stream.empty()) << name;
    const NdArray<float> pristine = kClizDecode(stream);
    auto cases = fault::truncation_cases(stream, 40);
    auto flips = fault::bit_flip_cases(stream, 80, 0xF3);
    cases.insert(cases.end(), std::make_move_iterator(flips.begin()),
                 std::make_move_iterator(flips.end()));
    for (const auto& f : cases) {
      SCOPED_TRACE(std::string(name) + " " + f.label);
      // v1 has no payload CRCs: silent corruption is possible by design,
      // so only the no-crash / no-OOM guarantee is asserted here.
      (void)classify_nofail(kClizDecode, f.bytes, pristine);
    }
  }
}

// --- archive salvage under the same fault matrix -------------------------

class FaultArchive : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-unique path: ctest -j runs each test as its own process of this
    // binary, and parallel fixtures must not clobber each other's file.
    path_ = (std::filesystem::temp_directory_path() /
             ("cliz_fault_archive_" + std::to_string(::getpid()) + ".clza"))
                .string();
    ArchiveWriter writer(path_);
    for (int v = 0; v < 3; ++v) {
      names_.push_back("VAR" + std::to_string(v));
      NdArray<float> data(Shape({12, 10}));
      Rng rng(7100 + static_cast<std::uint64_t>(v));
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<float>(0.01 * static_cast<double>(i) +
                                     0.05 * rng.uniform());
      }
      writer.add_variable_with("sz3", names_.back(), data, 1e-3);
    }
    writer.finish();
    bytes_ = read_file(path_);
    ASSERT_FALSE(bytes_.empty());
    // The reference for bit-exactness is the pristine *decode* (the codec
    // is lossy, so the input array is not the right baseline).
    ArchiveReader reference(path_);
    for (const auto& name : names_) {
      pristine_.push_back(reference.read(name));
    }
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  void write_faulted(const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
  std::vector<std::string> names_;
  std::vector<NdArray<float>> pristine_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(FaultArchive, EveryFaultYieldsErrorOrExactData) {
  std::vector<fault::Fault> cases = fault::bit_flip_cases(bytes_, 96, 0xA1);
  auto truncs = fault::truncation_cases(bytes_, 32);
  cases.insert(cases.end(), std::make_move_iterator(truncs.begin()),
               std::make_move_iterator(truncs.end()));
  const auto donor = read_file(golden_path("golden_plain.cliz"));
  auto splices = fault::splice_cases(bytes_, donor, 16, 0xA2);
  cases.insert(cases.end(), std::make_move_iterator(splices.begin()),
               std::make_move_iterator(splices.end()));

  for (const auto& f : cases) {
    SCOPED_TRACE("archive " + f.label);
    write_faulted(f.bytes);

    // Strict mode: open+read either throws Error or returns exact data.
    try {
      ArchiveReader reader(path_);
      for (std::size_t v = 0; v < names_.size(); ++v) {
        const auto got = reader.read(names_[v]);
        EXPECT_TRUE(bit_identical(got, pristine_[v]))
            << "strict read of " << names_[v] << " returned wrong data";
      }
    } catch (const Error&) {
    } catch (const std::bad_alloc&) {
      ADD_FAILURE() << "strict open drove an unbounded allocation";
    }

    // Tolerant mode: must never throw on byte-level damage, and every
    // variable it claims to have recovered must decode bit-exactly.
    ArchiveReader tolerant(path_, ArchiveOpenMode::kTolerant);
    for (const auto& recovered : tolerant.salvage().recovered) {
      for (std::size_t v = 0; v < names_.size(); ++v) {
        if (names_[v] != recovered) continue;
        const auto got = tolerant.read(recovered);
        EXPECT_TRUE(bit_identical(got, pristine_[v]))
            << "salvaged " << recovered << " is not bit-exact";
      }
    }
  }
}

TEST_F(FaultArchive, TolerantOpenOfPristineBytesRecoversEverything) {
  ArchiveReader tolerant(path_, ArchiveOpenMode::kTolerant);
  EXPECT_TRUE(tolerant.salvage().index_intact);
  EXPECT_EQ(tolerant.salvage().recovered.size(), names_.size());
  EXPECT_TRUE(tolerant.salvage().quarantined.empty());
}

}  // namespace
}  // namespace cliz
