// Fault-injection matrix over the committed golden corpus and a freshly
// written CLZA archive: every seeded bit flip, truncation, and splice must
// yield either a clean cliz::Error or output bit-identical to the pristine
// decode. Nothing else is acceptable — no crashes, no unbounded
// allocations, and above all no silently wrong data. ("Bit-identical" is a
// real outcome, not a loophole: a flip in unused trailing Huffman bits or
// in a section the decoder never reads changes nothing, and the CRC layer
// is entitled to wave such streams through.)
//
// Faults are deterministic functions of (stream, seed), so any failure
// reproduces from the printed case label.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unistd.h>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/chunked.hpp"
#include "src/core/cliz.hpp"
#include "src/core/codec_context.hpp"
#include "src/io/archive.hpp"
#include "src/lossless/lossless.hpp"
#include "tests/fault_injection.hpp"

// --- global allocation counters (this test binary only) -------------------
// Same guard as test_decompress_into.cpp: the limits matrix asserts that a
// header declaring a bomb is rejected BEFORE payload-proportional bytes are
// requested from the allocator, not merely that the decode throws.

// The replaced operators below are the textbook malloc/free pair, but once
// both ends inline into the same frame GCC's heuristic flags the free() as
// mismatched with the replaced new.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::size_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) noexcept {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
}  // namespace

// Every form is replaced (including nothrow, which libstdc++'s temporary
// buffers use) so no allocation pairs a library-provided new with our
// free — ASan's alloc-dealloc matching requires the full set.
void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cliz {
namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string golden_path(const char* file) {
  return std::string(CLIZ_GOLDEN_DIR) + "/" + file;
}

/// Bitwise equality of two decoded fields (shape and payload bytes).
bool bit_identical(const NdArray<float>& a, const NdArray<float>& b) {
  if (!(a.shape() == b.shape())) return false;
  return std::memcmp(a.flat().data(), b.flat().data(),
                     a.size() * sizeof(float)) == 0;
}

enum class Outcome { kCleanError, kIdentical, kSilentCorruption };

/// Decode a faulted frame with `decode` and classify the result against the
/// pristine decode. Any exception other than cliz::Error or std::bad_alloc
/// (length_error from a hostile resize, say) propagates and fails the test
/// loudly with the case label attached by the caller.
template <typename DecodeFn>
Outcome classify(const DecodeFn& decode,
                 const std::vector<std::uint8_t>& faulted,
                 const NdArray<float>& pristine) {
  try {
    const NdArray<float> out = decode(faulted);
    return bit_identical(out, pristine) ? Outcome::kIdentical
                                        : Outcome::kSilentCorruption;
  } catch (const Error&) {
    return Outcome::kCleanError;
  } catch (const std::bad_alloc&) {
    // An allocator refusal is a clean failure too, but the integrity layer
    // exists to cap untrusted sizes before they hit the allocator; treat a
    // bad_alloc as a budget violation so it shows up here.
    ADD_FAILURE() << "fault drove an unbounded allocation";
    return Outcome::kCleanError;
  }
}

/// classify() without the silent-corruption assertion, for checksum-less
/// v1 streams where a decodable-but-different result is allowed by design.
template <typename DecodeFn>
Outcome classify_nofail(const DecodeFn& decode,
                        const std::vector<std::uint8_t>& faulted,
                        const NdArray<float>& pristine) {
  try {
    const NdArray<float> out = decode(faulted);
    return bit_identical(out, pristine) ? Outcome::kIdentical
                                        : Outcome::kSilentCorruption;
  } catch (const Error&) {
    return Outcome::kCleanError;
  } catch (const std::bad_alloc&) {
    ADD_FAILURE() << "fault drove an unbounded allocation";
    return Outcome::kCleanError;
  }
}

struct MatrixTally {
  std::size_t clean = 0;
  std::size_t identical = 0;
};

/// Run every generated fault for one stream through `decode`.
template <typename DecodeFn>
MatrixTally run_matrix(const char* stream_name,
                       const std::vector<std::uint8_t>& stream,
                       const std::vector<std::uint8_t>& donor,
                       const DecodeFn& decode) {
  const NdArray<float> pristine = decode(stream);

  std::vector<fault::Fault> cases = fault::bit_flip_cases(stream, 160, 0xF1);
  auto truncs = fault::truncation_cases(stream, 40);
  cases.insert(cases.end(), std::make_move_iterator(truncs.begin()),
               std::make_move_iterator(truncs.end()));
  auto splices = fault::splice_cases(stream, donor, 24, 0xF2);
  cases.insert(cases.end(), std::make_move_iterator(splices.begin()),
               std::make_move_iterator(splices.end()));

  MatrixTally tally;
  for (const auto& f : cases) {
    SCOPED_TRACE(std::string(stream_name) + " " + f.label);
    switch (classify(decode, f.bytes, pristine)) {
      case Outcome::kCleanError:
        ++tally.clean;
        break;
      case Outcome::kIdentical:
        ++tally.identical;
        break;
      case Outcome::kSilentCorruption:
        ADD_FAILURE() << "decoded without error but produced wrong data";
        break;
    }
  }
  EXPECT_EQ(tally.clean + tally.identical, cases.size());
  // The corpus streams are dense enough that most faults land in live
  // sections; if almost everything sailed through "identical", the CRC
  // layer is not actually being exercised.
  EXPECT_GT(tally.clean, cases.size() / 2)
      << stream_name << ": too few faults detected";
  return tally;
}

const auto kClizDecode = [](const std::vector<std::uint8_t>& bytes) {
  return ClizCompressor::decompress(bytes);
};
const auto kChunkedDecode = [](const std::vector<std::uint8_t>& bytes) {
  return chunked_decompress(bytes);
};

TEST(FaultMatrix, PlainGoldenStream) {
  const auto stream = read_file(golden_path("golden_plain.cliz"));
  const auto donor = read_file(golden_path("golden_periodic.cliz"));
  ASSERT_FALSE(stream.empty());
  run_matrix("golden_plain", stream, donor, kClizDecode);
}

TEST(FaultMatrix, MaskedGoldenStream) {
  const auto stream = read_file(golden_path("golden_masked.cliz"));
  const auto donor = read_file(golden_path("golden_plain.cliz"));
  ASSERT_FALSE(stream.empty());
  run_matrix("golden_masked", stream, donor, kClizDecode);
}

TEST(FaultMatrix, PeriodicGoldenStream) {
  const auto stream = read_file(golden_path("golden_periodic.cliz"));
  const auto donor = read_file(golden_path("golden_masked.cliz"));
  ASSERT_FALSE(stream.empty());
  run_matrix("golden_periodic", stream, donor, kClizDecode);
}

TEST(FaultMatrix, ChunkedGoldenFrame) {
  const auto stream = read_file(golden_path("golden_chunked.clks"));
  const auto donor = read_file(golden_path("golden_plain.cliz"));
  ASSERT_FALSE(stream.empty());
  run_matrix("golden_chunked", stream, donor, kChunkedDecode);
}

// Checksum-less v1 frames predate the integrity layer, so "detect every
// flip" is off the table — but hostile bytes must still never crash or
// allocate unboundedly, and shape mismatches must still throw cleanly.
TEST(FaultMatrix, V1StreamsNeverCrash) {
  for (const char* name :
       {"v1_plain.cliz", "v1_masked.cliz", "v1_periodic.cliz"}) {
    const auto stream = read_file(golden_path(name));
    ASSERT_FALSE(stream.empty()) << name;
    const NdArray<float> pristine = kClizDecode(stream);
    auto cases = fault::truncation_cases(stream, 40);
    auto flips = fault::bit_flip_cases(stream, 80, 0xF3);
    cases.insert(cases.end(), std::make_move_iterator(flips.begin()),
                 std::make_move_iterator(flips.end()));
    for (const auto& f : cases) {
      SCOPED_TRACE(std::string(name) + " " + f.label);
      // v1 has no payload CRCs: silent corruption is possible by design,
      // so only the no-crash / no-OOM guarantee is asserted here.
      (void)classify_nofail(kClizDecode, f.bytes, pristine);
    }
  }
}

// --- archive salvage under the same fault matrix -------------------------

class FaultArchive : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-unique path: ctest -j runs each test as its own process of this
    // binary, and parallel fixtures must not clobber each other's file.
    path_ = (std::filesystem::temp_directory_path() /
             ("cliz_fault_archive_" + std::to_string(::getpid()) + ".clza"))
                .string();
    ArchiveWriter writer(path_);
    for (int v = 0; v < 3; ++v) {
      names_.push_back("VAR" + std::to_string(v));
      NdArray<float> data(Shape({12, 10}));
      Rng rng(7100 + static_cast<std::uint64_t>(v));
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<float>(0.01 * static_cast<double>(i) +
                                     0.05 * rng.uniform());
      }
      writer.add_variable_with("sz3", names_.back(), data, 1e-3);
    }
    writer.finish();
    bytes_ = read_file(path_);
    ASSERT_FALSE(bytes_.empty());
    // The reference for bit-exactness is the pristine *decode* (the codec
    // is lossy, so the input array is not the right baseline).
    ArchiveReader reference(path_);
    for (const auto& name : names_) {
      pristine_.push_back(reference.read(name));
    }
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  void write_faulted(const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
  std::vector<std::string> names_;
  std::vector<NdArray<float>> pristine_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(FaultArchive, EveryFaultYieldsErrorOrExactData) {
  std::vector<fault::Fault> cases = fault::bit_flip_cases(bytes_, 96, 0xA1);
  auto truncs = fault::truncation_cases(bytes_, 32);
  cases.insert(cases.end(), std::make_move_iterator(truncs.begin()),
               std::make_move_iterator(truncs.end()));
  const auto donor = read_file(golden_path("golden_plain.cliz"));
  auto splices = fault::splice_cases(bytes_, donor, 16, 0xA2);
  cases.insert(cases.end(), std::make_move_iterator(splices.begin()),
               std::make_move_iterator(splices.end()));

  for (const auto& f : cases) {
    SCOPED_TRACE("archive " + f.label);
    write_faulted(f.bytes);

    // Strict mode: open+read either throws Error or returns exact data.
    try {
      ArchiveReader reader(path_);
      for (std::size_t v = 0; v < names_.size(); ++v) {
        const auto got = reader.read(names_[v]);
        EXPECT_TRUE(bit_identical(got, pristine_[v]))
            << "strict read of " << names_[v] << " returned wrong data";
      }
    } catch (const Error&) {
    } catch (const std::bad_alloc&) {
      ADD_FAILURE() << "strict open drove an unbounded allocation";
    }

    // Tolerant mode: must never throw on byte-level damage, and every
    // variable it claims to have recovered must decode bit-exactly.
    ArchiveReader tolerant(path_, ArchiveOpenMode::kTolerant);
    for (const auto& recovered : tolerant.salvage().recovered) {
      for (std::size_t v = 0; v < names_.size(); ++v) {
        if (names_[v] != recovered) continue;
        const auto got = tolerant.read(recovered);
        EXPECT_TRUE(bit_identical(got, pristine_[v]))
            << "salvaged " << recovered << " is not bit-exact";
      }
    }
  }
}

TEST_F(FaultArchive, TolerantOpenOfPristineBytesRecoversEverything) {
  ArchiveReader tolerant(path_, ArchiveOpenMode::kTolerant);
  EXPECT_TRUE(tolerant.salvage().index_intact);
  EXPECT_EQ(tolerant.salvage().recovered.size(), names_.size());
  EXPECT_TRUE(tolerant.salvage().quarantined.empty());
}

// --- resource-limit matrix: bombs are refused before they allocate --------

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t varint_end(std::span<const std::uint8_t> bytes, std::size_t pos) {
  while (pos < bytes.size() && (bytes[pos] & 0x80u) != 0) ++pos;
  return pos + 1;
}

/// Rebuilds a raw (lossless-unwrapped) CliZ header with `dims` in place of
/// the stream's own dimension list; everything after the dims is kept.
std::vector<std::uint8_t> with_spliced_dims(
    std::span<const std::uint8_t> raw,
    const std::vector<std::uint64_t>& dims) {
  // [magic u32][width u8][ndims varint][dim varints...]
  std::size_t cursor = varint_end(raw, 5);  // past ndims
  const std::size_t ndims = raw[5];         // corpus streams: 1-byte varint
  for (std::size_t d = 0; d < ndims; ++d) cursor = varint_end(raw, cursor);
  std::vector<std::uint8_t> out(raw.begin(), raw.begin() + 5);
  put_varint(out, dims.size());
  for (const std::uint64_t d : dims) put_varint(out, d);
  out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(cursor),
             raw.end());
  return out;
}

/// Runs `decode`, requiring Error{kLimitExceeded} and an allocation total
/// far below `declared_bytes` — the bomb must fizzle at the header.
template <typename Fn>
void expect_limit_refusal(const Fn& decode, std::size_t input_bytes,
                          std::uint64_t declared_bytes) {
  const std::size_t before = g_alloc_bytes.load(std::memory_order_relaxed);
  try {
    decode();
    ADD_FAILURE() << "hostile declaration decoded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kLimitExceeded) << e.what();
  }
  const std::size_t delta =
      g_alloc_bytes.load(std::memory_order_relaxed) - before;
  // Budget: the lossless unwrap plus parser scratch, never the payload.
  const std::size_t budget = input_bytes * 8 + (std::size_t{1} << 20);
  EXPECT_LT(delta, budget) << "allocated " << delta
                           << " bytes for a declaration of "
                           << declared_bytes;
  EXPECT_LT(static_cast<std::uint64_t>(delta), declared_bytes / 2)
      << "allocation tracked the hostile declaration";
}

TEST(FaultLimits, InflatedDimsRejectedBeforeAllocation) {
  for (const char* name :
       {"golden_plain.cliz", "golden_masked.cliz", "golden_periodic.cliz"}) {
    SCOPED_TRACE(name);
    const auto stream = read_file(golden_path(name));
    ASSERT_FALSE(stream.empty());
    const auto raw = lossless_decompress(stream);
    // 2^90 declared elements: over max_extents (2^33) by a huge margin and
    // far past anything the allocator could survive.
    const auto bomb = lossless_compress(
        with_spliced_dims(raw, {1ull << 30, 1ull << 30, 1ull << 30}));
    expect_limit_refusal(
        [&] { (void)ClizCompressor::decompress(bomb); }, bomb.size(),
        std::uint64_t{1} << 35);
    // The pristine stream still decodes under default limits.
    EXPECT_NO_THROW((void)ClizCompressor::decompress(stream));
  }
}

TEST(FaultLimits, TightenedOutputBudgetRejectsPristineStream) {
  // A served request can cap the output below the stream's true size; the
  // refusal must carry kLimitExceeded and happen before the output exists.
  const auto stream = read_file(golden_path("golden_plain.cliz"));
  ASSERT_FALSE(stream.empty());
  CodecContext ctx;
  ctx.limits.max_output_bytes = 16;
  expect_limit_refusal(
      [&] { (void)ClizCompressor::decompress(stream, ctx); }, stream.size(),
      std::uint64_t{1} << 35);
}

TEST(FaultLimits, ChunkedInflatedDimsAndChunkCount) {
  const auto stream = read_file(golden_path("golden_chunked.clks"));
  ASSERT_FALSE(stream.empty());
  // CLK2 header is unwrapped: [magic u32][ndims varint][dims...][n_chunks].
  std::size_t cursor = varint_end(stream, 4);  // past ndims
  const std::size_t ndims = stream[4];
  const std::size_t dims_at = cursor;
  for (std::size_t d = 0; d < ndims; ++d) cursor = varint_end(stream, cursor);
  const std::size_t chunks_at = cursor;

  {  // dims bomb: product far over max_extents
    std::vector<std::uint8_t> bomb(stream.begin(),
                                   stream.begin() + static_cast<std::ptrdiff_t>(dims_at));
    for (std::size_t d = 0; d < ndims; ++d) put_varint(bomb, 1ull << 40);
    bomb.insert(bomb.end(), stream.begin() + static_cast<std::ptrdiff_t>(cursor),
                stream.end());
    expect_limit_refusal([&] { (void)chunked_decompress(bomb); }, bomb.size(),
                         std::uint64_t{1} << 35);
  }
  {  // chunk-count bomb: 2^30 refs declared (> max_chunks 2^20), caught
     // before the ref table resizes — upstream of the header CRC check.
    std::vector<std::uint8_t> bomb(
        stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(chunks_at));
    put_varint(bomb, 1ull << 30);
    bomb.insert(bomb.end(),
                stream.begin() +
                    static_cast<std::ptrdiff_t>(varint_end(stream, chunks_at)),
                stream.end());
    expect_limit_refusal([&] { (void)chunked_decompress(bomb); }, bomb.size(),
                         (std::uint64_t{1} << 30) * sizeof(void*));
  }
  EXPECT_NO_THROW((void)chunked_decompress(stream));
}

TEST(FaultLimits, ChunkedAggregateOutputBudget) {
  // A frame sliced into chunks each below the cap must not bypass the
  // aggregate budget: the frame-level shape is checked against
  // max_output_bytes before the output array is sized.
  const auto stream = read_file(golden_path("golden_chunked.clks"));
  ASSERT_FALSE(stream.empty());
  ResourceLimits limits;
  limits.max_output_bytes = 16;  // the frame decodes to far more
  {
    ChunkedScratch scratch;
    scratch.pool.set_governor(limits, nullptr);
    expect_limit_refusal([&] { (void)chunked_decompress(stream, &scratch); },
                         stream.size(), std::uint64_t{1} << 35);
  }
  // The width probe parses the same header and honours the same budgets.
  ResourceLimits probe;
  probe.max_chunks = 0;
  expect_limit_refusal([&] { (void)chunked_sample_bytes(stream, probe); },
                       stream.size(), std::uint64_t{1} << 20);
  EXPECT_NO_THROW((void)chunked_decompress(stream));
}

TEST(FaultLimits, FramedSegmentCountSplice) {
  // Build a framed stream, then inflate its declared segment count: the
  // governor must refuse before the segment table reserves.
  NdArray<float> data(Shape({64, 48}));
  Rng rng(4242);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(0.02 * static_cast<double>(i % 97) +
                                 0.01 * rng.normal());
  }
  ClizOptions framed_opts;
  framed_opts.frame_passes = true;
  const auto serial_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(2)).compress(data, 1e-3));
  const auto framed_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(2), framed_opts)
          .compress(data, 1e-3));
  const std::size_t pos = fault::first_divergence(serial_raw, framed_raw);
  ASSERT_LT(pos + 1, framed_raw.size());
  ASSERT_EQ(framed_raw[pos] & 0x80u, 0x80u);  // framed bit
  ASSERT_EQ(framed_raw[pos + 1], 1u);         // layout id
  const std::size_t segs_at = pos + 2;

  std::vector<std::uint8_t> bomb(
      framed_raw.begin(), framed_raw.begin() + static_cast<std::ptrdiff_t>(segs_at));
  put_varint(bomb, 1ull << 40);  // > max_frame_segments (2^22)
  bomb.insert(bomb.end(),
              framed_raw.begin() +
                  static_cast<std::ptrdiff_t>(varint_end(framed_raw, segs_at)),
              framed_raw.end());
  const auto wrapped = lossless_compress(bomb);
  expect_limit_refusal([&] { (void)ClizCompressor::decompress(wrapped); },
                       wrapped.size(), (std::uint64_t{1} << 40));

  // Tightened per-request budget refuses even the honest stream.
  const auto honest = lossless_compress(framed_raw);
  CodecContext ctx;
  ctx.limits.max_frame_segments = 0;
  expect_limit_refusal([&] { (void)ClizCompressor::decompress(honest, ctx); },
                       honest.size(), std::uint64_t{1} << 22);
  EXPECT_NO_THROW((void)ClizCompressor::decompress(honest));
}

TEST(FaultLimits, RegressionSideBlockBudget) {
  // The regression predictor's coefficient block is sized by header fields;
  // a tightened side-block budget must refuse it before any tuple parses.
  NdArray<float> data(Shape({32, 32}));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i % 31) * 0.125f;
  }
  ClizOptions reg_opts;
  reg_opts.predictor = PredictorBackend::kRegression;
  const auto stream = ClizCompressor(PipelineConfig::defaults(2), reg_opts)
                          .compress(data, 1e-3);
  CodecContext ctx;
  ctx.limits.max_side_block_bytes = 8;
  expect_limit_refusal([&] { (void)ClizCompressor::decompress(stream, ctx); },
                       stream.size(), std::uint64_t{1} << 31);
  EXPECT_NO_THROW((void)ClizCompressor::decompress(stream));
}

TEST_F(FaultArchive, ReaderLimitsRefuseBeforeAllocation) {
  // The CLZA index CRC covers the declared sizes, so hostile declarations
  // are exercised by tightening the reader's budgets over a clean archive —
  // the same code path a spliced index would hit, without fighting the CRC.
  {
    ResourceLimits limits;
    limits.max_archive_variables = 1;  // archive holds 3
    expect_limit_refusal(
        [&] { ArchiveReader r(path_, ArchiveOpenMode::kStrict, limits); },
        bytes_.size(), std::uint64_t{1} << 20);
  }
  {
    ResourceLimits limits;
    limits.max_record_bytes = 4;
    expect_limit_refusal(
        [&] { ArchiveReader r(path_, ArchiveOpenMode::kStrict, limits); },
        bytes_.size(), std::uint64_t{1} << 20);
  }
  {
    // Tolerant scan over a damaged trailer: the salvage cap bounds how many
    // records a hostile file can make the scanner accumulate, but keeps the
    // verified prefix instead of aborting the whole open.
    auto damaged = bytes_;
    ASSERT_GT(damaged.size(), 8u);
    damaged.resize(damaged.size() - 8);  // kill the trailer
    write_faulted(damaged);
    ResourceLimits limits;
    limits.max_salvage_records = 1;  // archive holds 3
    ArchiveReader r(path_, ArchiveOpenMode::kTolerant, limits);
    EXPECT_FALSE(r.salvage().index_intact);
    ASSERT_EQ(r.salvage().recovered.size(), 1u);
    EXPECT_TRUE(r.salvage().truncated);
    EXPECT_NE(r.salvage().to_text().find("truncated"), std::string::npos);
    EXPECT_TRUE(bit_identical(r.read(r.salvage().recovered.front()),
                              pristine_.front()));
  }
}

TEST_F(FaultArchive, DefaultLimitsReadEverything) {
  ArchiveReader reader(path_, ArchiveOpenMode::kStrict, ResourceLimits{});
  for (std::size_t v = 0; v < names_.size(); ++v) {
    EXPECT_TRUE(bit_identical(reader.read(names_[v]), pristine_[v]));
  }
}

}  // namespace
}  // namespace cliz
