#include "src/io/archive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/climate/datasets.hpp"
#include "src/core/compressor.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

/// Temp file path helper with automatic cleanup.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    path_ = (std::filesystem::temp_directory_path() /
             ("cliz_test_" + stem + ".clza"))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

NdArray<float> smooth_array(const DimVec& dims, std::uint64_t seed) {
  const Shape shape(dims);
  NdArray<float> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += std::sin(0.1 * static_cast<double>(c[d]));
    }
    a[i] = static_cast<float>(v + 0.01 * rng.normal());
  }
  return a;
}

TEST(Archive, SingleVariableRoundTrip) {
  TempFile file("single");
  const auto data = smooth_array({12, 10, 14}, 1);
  {
    ArchiveWriter w(file.path());
    w.add_variable("TEMP", data, 1e-3, PipelineConfig::defaults(3), nullptr,
                   {{"units", "K"}, {"model", "atm"}});
    w.finish();
  }
  ArchiveReader r(file.path());
  ASSERT_EQ(r.variables().size(), 1u);
  const auto& info = r.info("TEMP");
  EXPECT_EQ(info.codec, "cliz");
  EXPECT_EQ(info.dims, (DimVec{12, 10, 14}));
  EXPECT_EQ(info.error_bound, 1e-3);
  EXPECT_EQ(info.attributes.at("units"), "K");

  const auto recon = r.read("TEMP");
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
}

TEST(Archive, MultipleVariablesMixedCodecs) {
  TempFile file("mixed");
  const auto a = smooth_array({20, 20}, 2);
  const auto b = smooth_array({8, 10, 12}, 3);
  const auto c = smooth_array({64}, 4);
  {
    ArchiveWriter w(file.path());
    w.add_variable_with("sz3", "SALT", a, 1e-2);
    w.add_variable_with("zfp", "RHO", b, 1e-3);
    w.add_variable_with("sperr", "SHF", c, 1e-4);
    EXPECT_EQ(w.variable_count(), 3u);
  }  // destructor finishes
  ArchiveReader r(file.path());
  ASSERT_EQ(r.variables().size(), 3u);
  EXPECT_TRUE(r.contains("SALT"));
  EXPECT_TRUE(r.contains("RHO"));
  EXPECT_FALSE(r.contains("TEMP"));
  EXPECT_LE(error_stats(a.flat(), r.read("SALT").flat()).max_abs_error, 1e-2);
  EXPECT_LE(error_stats(b.flat(), r.read("RHO").flat()).max_abs_error, 1e-3);
  EXPECT_LE(error_stats(c.flat(), r.read("SHF").flat()).max_abs_error, 1e-4);
}

TEST(Archive, MaskedClimateFieldRoundTrip) {
  TempFile file("masked");
  const auto field = make_ssh(0.1, 800);
  PipelineConfig config = PipelineConfig::defaults(3);
  config.period = 12;
  {
    ArchiveWriter w(file.path());
    w.add_variable("SSH", field.data, 1e-3, config, field.mask_ptr(),
                   {{"units", "m"}});
  }
  ArchiveReader r(file.path());
  const auto recon = r.read("SSH");
  const auto stats =
      error_stats(field.data.flat(), recon.flat(), field.mask_ptr());
  EXPECT_LE(stats.max_abs_error, 1e-3);
  // Masked positions carry the fill value.
  for (std::size_t i = 0; i < recon.size(); ++i) {
    if (!field.mask->valid(i)) {
      EXPECT_EQ(recon[i], 9.96921e36f);
    }
  }
}

TEST(Archive, RandomAccessDoesNotTouchOtherVariables) {
  TempFile file("random_access");
  std::vector<NdArray<float>> arrays;
  {
    ArchiveWriter w(file.path());
    for (int i = 0; i < 5; ++i) {
      arrays.push_back(smooth_array({16, 16}, 100 + i));
      w.add_variable_with("sz3", "VAR" + std::to_string(i), arrays.back(),
                          1e-3);
    }
  }
  ArchiveReader r(file.path());
  // Read in reverse order.
  for (int i = 4; i >= 0; --i) {
    const auto recon = r.read("VAR" + std::to_string(i));
    EXPECT_LE(error_stats(arrays[static_cast<std::size_t>(i)].flat(),
                          recon.flat())
                  .max_abs_error,
              1e-3)
        << i;
  }
}

TEST(Archive, ReadRawMatchesDirectDecompression) {
  TempFile file("raw");
  const auto data = smooth_array({24, 24}, 5);
  {
    ArchiveWriter w(file.path());
    w.add_variable_with("qoz", "Q", data, 1e-3);
  }
  ArchiveReader r(file.path());
  const auto raw = r.read_raw("Q");
  EXPECT_EQ(raw.size(), r.info("Q").compressed_bytes);
  const auto recon = make_compressor("qoz")->decompress(raw);
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
}

TEST(Archive, Float64VariableRoundTrip) {
  TempFile file("f64");
  const Shape shape({10, 12});
  NdArray<double> data(shape);
  Rng rng(55);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1.0 + 1e-10 * rng.normal();
  }
  const double eb = 1e-11;  // far below float32 resolution
  {
    ArchiveWriter w(file.path());
    w.add_variable("PRECISE", data, eb, PipelineConfig::defaults(2), nullptr,
                   {{"units", "m"}});
  }
  ArchiveReader r(file.path());
  EXPECT_EQ(r.info("PRECISE").sample_bytes, 8u);
  const auto recon = r.read_f64("PRECISE");
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::abs(recon[i] - data[i]), eb);
  }
  // The wrong-typed reader must refuse.
  EXPECT_THROW((void)r.read("PRECISE"), Error);
}

TEST(Archive, Float32ReadRefusedByF64Reader) {
  TempFile file("f32_as_f64");
  {
    ArchiveWriter w(file.path());
    w.add_variable_with("sz3", "X", smooth_array({8, 8}, 56), 1e-3);
  }
  ArchiveReader r(file.path());
  EXPECT_EQ(r.info("X").sample_bytes, 4u);
  EXPECT_THROW((void)r.read_f64("X"), Error);
}

TEST(Archive, DuplicateNameRejected) {
  TempFile file("dup");
  const auto data = smooth_array({8, 8}, 6);
  ArchiveWriter w(file.path());
  w.add_variable_with("sz3", "X", data, 1e-3);
  EXPECT_THROW(w.add_variable_with("sz3", "X", data, 1e-3), Error);
}

TEST(Archive, UnknownVariableThrows) {
  TempFile file("unknown");
  {
    ArchiveWriter w(file.path());
    w.add_variable_with("sz3", "X", smooth_array({8, 8}, 7), 1e-3);
  }
  ArchiveReader r(file.path());
  EXPECT_THROW((void)r.read("Y"), Error);
  EXPECT_THROW((void)r.info("Y"), Error);
}

TEST(Archive, UnknownCodecRejectedAtWrite) {
  TempFile file("badcodec");
  ArchiveWriter w(file.path());
  EXPECT_THROW(
      w.add_variable_with("gzip", "X", smooth_array({8, 8}, 8), 1e-3), Error);
}

TEST(Archive, MissingFileThrows) {
  EXPECT_THROW(ArchiveReader("/nonexistent/path.clza"), Error);
}

TEST(Archive, TruncatedArchiveRejected) {
  TempFile file("trunc");
  {
    ArchiveWriter w(file.path());
    w.add_variable_with("sz3", "X", smooth_array({16, 16}, 9), 1e-3);
  }
  // Chop off the trailer.
  const auto size = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), size - 6);
  EXPECT_THROW(ArchiveReader{file.path()}, Error);
}

TEST(Archive, GarbageFileRejected) {
  TempFile file("garbage");
  {
    std::ofstream out(file.path(), std::ios::binary);
    for (int i = 0; i < 256; ++i) out.put(static_cast<char>(i * 37));
  }
  EXPECT_THROW(ArchiveReader{file.path()}, Error);
}

TEST(Archive, EmptyArchiveIsValid) {
  TempFile file("empty");
  { ArchiveWriter w(file.path()); }
  ArchiveReader r(file.path());
  EXPECT_TRUE(r.variables().empty());
}

TEST(Archive, FinishIsIdempotent) {
  TempFile file("idem");
  ArchiveWriter w(file.path());
  w.add_variable_with("sz3", "X", smooth_array({8, 8}, 10), 1e-3);
  w.finish();
  w.finish();  // no-op
  ArchiveReader r(file.path());
  EXPECT_EQ(r.variables().size(), 1u);
}

TEST(Archive, AddAfterFinishRejected) {
  TempFile file("late");
  ArchiveWriter w(file.path());
  w.finish();
  EXPECT_THROW(
      w.add_variable_with("sz3", "X", smooth_array({8, 8}, 11), 1e-3), Error);
}

}  // namespace
}  // namespace cliz
