#include "src/io/archive.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/climate/datasets.hpp"
#include "src/common/bytestream.hpp"
#include "src/common/crc32c.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/compressor.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

/// Temp file path helper with automatic cleanup.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    path_ = (std::filesystem::temp_directory_path() /
             ("cliz_test_" + stem + ".clza"))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

NdArray<float> smooth_array(const DimVec& dims, std::uint64_t seed) {
  const Shape shape(dims);
  NdArray<float> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += std::sin(0.1 * static_cast<double>(c[d]));
    }
    a[i] = static_cast<float>(v + 0.01 * rng.normal());
  }
  return a;
}

TEST(Archive, SingleVariableRoundTrip) {
  TempFile file("single");
  const auto data = smooth_array({12, 10, 14}, 1);
  {
    ArchiveWriter w(file.path());
    w.add_variable("TEMP", data, 1e-3, PipelineConfig::defaults(3), nullptr,
                   {{"units", "K"}, {"model", "atm"}});
    w.finish();
  }
  ArchiveReader r(file.path());
  ASSERT_EQ(r.variables().size(), 1u);
  const auto& info = r.info("TEMP");
  EXPECT_EQ(info.codec, "cliz");
  EXPECT_EQ(info.dims, (DimVec{12, 10, 14}));
  EXPECT_EQ(info.error_bound, 1e-3);
  EXPECT_EQ(info.attributes.at("units"), "K");

  const auto recon = r.read("TEMP");
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
}

TEST(Archive, MultipleVariablesMixedCodecs) {
  TempFile file("mixed");
  const auto a = smooth_array({20, 20}, 2);
  const auto b = smooth_array({8, 10, 12}, 3);
  const auto c = smooth_array({64}, 4);
  {
    ArchiveWriter w(file.path());
    w.add_variable_with("sz3", "SALT", a, 1e-2);
    w.add_variable_with("zfp", "RHO", b, 1e-3);
    w.add_variable_with("sperr", "SHF", c, 1e-4);
    EXPECT_EQ(w.variable_count(), 3u);
  }  // destructor finishes
  ArchiveReader r(file.path());
  ASSERT_EQ(r.variables().size(), 3u);
  EXPECT_TRUE(r.contains("SALT"));
  EXPECT_TRUE(r.contains("RHO"));
  EXPECT_FALSE(r.contains("TEMP"));
  EXPECT_LE(error_stats(a.flat(), r.read("SALT").flat()).max_abs_error, 1e-2);
  EXPECT_LE(error_stats(b.flat(), r.read("RHO").flat()).max_abs_error, 1e-3);
  EXPECT_LE(error_stats(c.flat(), r.read("SHF").flat()).max_abs_error, 1e-4);
}

TEST(Archive, MaskedClimateFieldRoundTrip) {
  TempFile file("masked");
  const auto field = make_ssh(0.1, 800);
  PipelineConfig config = PipelineConfig::defaults(3);
  config.period = 12;
  {
    ArchiveWriter w(file.path());
    w.add_variable("SSH", field.data, 1e-3, config, field.mask_ptr(),
                   {{"units", "m"}});
  }
  ArchiveReader r(file.path());
  const auto recon = r.read("SSH");
  const auto stats =
      error_stats(field.data.flat(), recon.flat(), field.mask_ptr());
  EXPECT_LE(stats.max_abs_error, 1e-3);
  // Masked positions carry the fill value.
  for (std::size_t i = 0; i < recon.size(); ++i) {
    if (!field.mask->valid(i)) {
      EXPECT_EQ(recon[i], 9.96921e36f);
    }
  }
}

TEST(Archive, RandomAccessDoesNotTouchOtherVariables) {
  TempFile file("random_access");
  std::vector<NdArray<float>> arrays;
  {
    ArchiveWriter w(file.path());
    for (int i = 0; i < 5; ++i) {
      arrays.push_back(smooth_array({16, 16}, 100 + i));
      w.add_variable_with("sz3", "VAR" + std::to_string(i), arrays.back(),
                          1e-3);
    }
  }
  ArchiveReader r(file.path());
  // Read in reverse order.
  for (int i = 4; i >= 0; --i) {
    const auto recon = r.read("VAR" + std::to_string(i));
    EXPECT_LE(error_stats(arrays[static_cast<std::size_t>(i)].flat(),
                          recon.flat())
                  .max_abs_error,
              1e-3)
        << i;
  }
}

TEST(Archive, ReadRawMatchesDirectDecompression) {
  TempFile file("raw");
  const auto data = smooth_array({24, 24}, 5);
  {
    ArchiveWriter w(file.path());
    w.add_variable_with("qoz", "Q", data, 1e-3);
  }
  ArchiveReader r(file.path());
  const auto raw = r.read_raw("Q");
  EXPECT_EQ(raw.size(), r.info("Q").compressed_bytes);
  const auto recon = make_compressor("qoz")->decompress(raw);
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
}

TEST(Archive, Float64VariableRoundTrip) {
  TempFile file("f64");
  const Shape shape({10, 12});
  NdArray<double> data(shape);
  Rng rng(55);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1.0 + 1e-10 * rng.normal();
  }
  const double eb = 1e-11;  // far below float32 resolution
  {
    ArchiveWriter w(file.path());
    w.add_variable("PRECISE", data, eb, PipelineConfig::defaults(2), nullptr,
                   {{"units", "m"}});
  }
  ArchiveReader r(file.path());
  EXPECT_EQ(r.info("PRECISE").sample_bytes, 8u);
  const auto recon = r.read_f64("PRECISE");
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::abs(recon[i] - data[i]), eb);
  }
  // The wrong-typed reader must refuse.
  EXPECT_THROW((void)r.read("PRECISE"), Error);
}

TEST(Archive, Float32ReadRefusedByF64Reader) {
  TempFile file("f32_as_f64");
  {
    ArchiveWriter w(file.path());
    w.add_variable_with("sz3", "X", smooth_array({8, 8}, 56), 1e-3);
  }
  ArchiveReader r(file.path());
  EXPECT_EQ(r.info("X").sample_bytes, 4u);
  EXPECT_THROW((void)r.read_f64("X"), Error);
}

TEST(Archive, DuplicateNameRejected) {
  TempFile file("dup");
  const auto data = smooth_array({8, 8}, 6);
  ArchiveWriter w(file.path());
  w.add_variable_with("sz3", "X", data, 1e-3);
  EXPECT_THROW(w.add_variable_with("sz3", "X", data, 1e-3), Error);
}

TEST(Archive, UnknownVariableThrows) {
  TempFile file("unknown");
  {
    ArchiveWriter w(file.path());
    w.add_variable_with("sz3", "X", smooth_array({8, 8}, 7), 1e-3);
  }
  ArchiveReader r(file.path());
  EXPECT_THROW((void)r.read("Y"), Error);
  EXPECT_THROW((void)r.info("Y"), Error);
}

TEST(Archive, UnknownCodecRejectedAtWrite) {
  TempFile file("badcodec");
  ArchiveWriter w(file.path());
  EXPECT_THROW(
      w.add_variable_with("gzip", "X", smooth_array({8, 8}, 8), 1e-3), Error);
}

TEST(Archive, MissingFileThrows) {
  EXPECT_THROW(ArchiveReader("/nonexistent/path.clza"), Error);
}

TEST(Archive, TruncatedArchiveRejected) {
  TempFile file("trunc");
  {
    ArchiveWriter w(file.path());
    w.add_variable_with("sz3", "X", smooth_array({16, 16}, 9), 1e-3);
  }
  // Chop off the trailer.
  const auto size = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), size - 6);
  EXPECT_THROW(ArchiveReader{file.path()}, Error);
}

TEST(Archive, GarbageFileRejected) {
  TempFile file("garbage");
  {
    std::ofstream out(file.path(), std::ios::binary);
    for (int i = 0; i < 256; ++i) out.put(static_cast<char>(i * 37));
  }
  EXPECT_THROW(ArchiveReader{file.path()}, Error);
}

TEST(Archive, EmptyArchiveIsValid) {
  TempFile file("empty");
  { ArchiveWriter w(file.path()); }
  ArchiveReader r(file.path());
  EXPECT_TRUE(r.variables().empty());
}

TEST(Archive, FinishIsIdempotent) {
  TempFile file("idem");
  ArchiveWriter w(file.path());
  w.add_variable_with("sz3", "X", smooth_array({8, 8}, 10), 1e-3);
  w.finish();
  w.finish();  // no-op
  ArchiveReader r(file.path());
  EXPECT_EQ(r.variables().size(), 1u);
}

TEST(Archive, AddAfterFinishRejected) {
  TempFile file("late");
  ArchiveWriter w(file.path());
  w.finish();
  EXPECT_THROW(
      w.add_variable_with("sz3", "X", smooth_array({8, 8}, 11), 1e-3), Error);
}

// --- integrity and salvage ----------------------------------------------

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Writes a three-variable archive and returns the pristine decodes.
std::vector<NdArray<float>> write_test_archive(const std::string& path) {
  std::vector<NdArray<float>> arrays;
  ArchiveWriter w(path);
  for (int i = 0; i < 3; ++i) {
    arrays.push_back(smooth_array({12, 10}, 900 + i));
    w.add_variable_with("sz3", "VAR" + std::to_string(i), arrays.back(),
                        1e-3);
  }
  w.finish();
  return arrays;
}

TEST(Archive, TolerantOpenOfCleanArchiveReportsIntactIndex) {
  TempFile file("clean_tolerant");
  write_test_archive(file.path());
  ArchiveReader r(file.path(), ArchiveOpenMode::kTolerant);
  EXPECT_TRUE(r.salvage().index_intact);
  EXPECT_EQ(r.salvage().recovered.size(), 3u);
  EXPECT_TRUE(r.salvage().quarantined.empty());
  EXPECT_NE(r.salvage().to_text().find("VAR1"), std::string::npos);
}

TEST(Archive, SalvageRecoversAllVariablesFromCorruptTrailer) {
  TempFile file("salvage_trailer");
  const auto arrays = write_test_archive(file.path());

  // Smash the trailer: strict open must refuse, tolerant open must rebuild
  // the listing from the record frames alone, bit-exact.
  auto bytes = slurp(file.path());
  for (std::size_t i = bytes.size() - 12; i < bytes.size(); ++i) {
    bytes[i] ^= 0xFF;
  }
  dump(file.path(), bytes);

  EXPECT_THROW(ArchiveReader{file.path()}, Error);
  ArchiveReader r(file.path(), ArchiveOpenMode::kTolerant);
  EXPECT_FALSE(r.salvage().index_intact);
  ASSERT_EQ(r.salvage().recovered.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const auto name = "VAR" + std::to_string(i);
    EXPECT_TRUE(r.contains(name));
    const auto recon = r.read(name);
    EXPECT_LE(error_stats(arrays[static_cast<std::size_t>(i)].flat(),
                          recon.flat())
                  .max_abs_error,
              1e-3);
  }
}

TEST(Archive, SalvageRecoversPrefixOfTruncatedArchive) {
  TempFile file("salvage_trunc");
  write_test_archive(file.path());
  // Cut the file roughly mid-way: the tail records and the index are gone.
  const auto size = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), size / 2);

  EXPECT_THROW(ArchiveReader{file.path()}, Error);
  ArchiveReader r(file.path(), ArchiveOpenMode::kTolerant);
  EXPECT_FALSE(r.salvage().index_intact);
  EXPECT_LT(r.salvage().recovered.size(), 3u);
  for (const auto& name : r.salvage().recovered) {
    EXPECT_NO_THROW((void)r.read(name));  // everything listed must decode
  }
}

TEST(Archive, CorruptPayloadCaughtStrictAndQuarantinedTolerant) {
  TempFile file("payload_flip");
  const auto arrays = write_test_archive(file.path());

  // Locate VAR1's payload in the file via its pristine raw stream and flip
  // one byte in the middle of it.
  std::vector<std::uint8_t> target;
  {
    ArchiveReader pristine(file.path());
    target = pristine.read_raw("VAR1");
  }
  auto bytes = slurp(file.path());
  const auto it = std::search(bytes.begin(), bytes.end(), target.begin(),
                              target.end());
  ASSERT_NE(it, bytes.end());
  *(it + static_cast<std::ptrdiff_t>(target.size() / 2)) ^= 0x10;
  dump(file.path(), bytes);

  // Strict open still works (the index is fine) but the damaged variable
  // is refused at read time by its payload CRC.
  ArchiveReader strict(file.path());
  EXPECT_THROW((void)strict.read("VAR1"), Error);
  EXPECT_NO_THROW((void)strict.read("VAR0"));

  // Tolerant open quarantines it up front and vouches for the rest.
  ArchiveReader r(file.path(), ArchiveOpenMode::kTolerant);
  EXPECT_FALSE(r.contains("VAR1"));
  ASSERT_EQ(r.salvage().quarantined.size(), 1u);
  EXPECT_EQ(r.salvage().quarantined[0].name, "VAR1");
  for (const auto& name : {"VAR0", "VAR2"}) {
    const int i = name[3] - '0';
    const auto recon = r.read(name);
    EXPECT_LE(error_stats(arrays[static_cast<std::size_t>(i)].flat(),
                          recon.flat())
                  .max_abs_error,
              1e-3);
  }
}

TEST(Archive, SalvageOfGarbageFileRecoversNothing) {
  TempFile file("salvage_garbage");
  {
    std::ofstream out(file.path(), std::ios::binary);
    for (int i = 0; i < 4096; ++i) out.put(static_cast<char>(i * 37));
  }
  ArchiveReader r(file.path(), ArchiveOpenMode::kTolerant);
  EXPECT_FALSE(r.salvage().index_intact);
  EXPECT_TRUE(r.salvage().recovered.empty());
  EXPECT_TRUE(r.variables().empty());
}

// --- v1 backward compatibility ------------------------------------------

/// Writes an archive in the exact v1 layout (unframed payloads, plain
/// index with interleaved offsets, no checksums anywhere).
void write_v1_archive(
    const std::string& path,
    const std::vector<std::pair<std::string, NdArray<float>>>& vars,
    double eb) {
  ByteWriter w;
  w.put(std::uint32_t{0x434C5A41u});  // "CLZA"
  w.put(std::uint32_t{1});            // version 1
  struct Rec {
    std::string name;
    DimVec dims;
    std::uint64_t offset;
    std::uint64_t size;
  };
  std::vector<Rec> recs;
  for (const auto& [name, data] : vars) {
    const auto stream = make_compressor("sz3")->compress(data, eb);
    recs.push_back({name, data.shape().dims(), w.size(), stream.size()});
    w.put_bytes(stream);
  }
  const std::uint64_t index_offset = w.size();
  w.put_varint(recs.size());
  for (const auto& rec : recs) {
    w.put_string(rec.name);
    w.put_varint(rec.dims.size());
    for (const std::size_t d : rec.dims) w.put_varint(d);
    w.put_string("sz3");
    w.put(eb);
    w.put_varint(rec.size);
    w.put_varint(rec.offset);
    w.put_varint(std::uint64_t{4});  // sample_bytes
    w.put_varint(std::uint64_t{0});  // no attributes
  }
  w.put(index_offset);
  w.put(std::uint32_t{0x434C5A41u});
  dump(path, {w.bytes().begin(), w.bytes().end()});
}

TEST(Archive, V1ArchiveStillReads) {
  TempFile file("v1_compat");
  const auto a = smooth_array({10, 12}, 77);
  const auto b = smooth_array({6, 8, 10}, 78);
  write_v1_archive(file.path(), {{"A", a}, {"B", b}}, 1e-3);

  ArchiveReader r(file.path());
  ASSERT_EQ(r.variables().size(), 2u);
  EXPECT_EQ(r.info("B").dims, (DimVec{6, 8, 10}));
  EXPECT_LE(error_stats(a.flat(), r.read("A").flat()).max_abs_error, 1e-3);
  EXPECT_LE(error_stats(b.flat(), r.read("B").flat()).max_abs_error, 1e-3);

  // Tolerant open of a clean v1 archive keeps everything (no CRCs to
  // check) and reports the index intact.
  ArchiveReader t(file.path(), ArchiveOpenMode::kTolerant);
  EXPECT_TRUE(t.salvage().index_intact);
  EXPECT_EQ(t.salvage().recovered.size(), 2u);
}

TEST(Archive, HostileIndexCountRejectedBeforeAllocation) {
  TempFile file("hostile_count");
  write_test_archive(file.path());
  auto bytes = slurp(file.path());
  // Read the genuine index offset from the trailer, then replace the
  // index with a tiny block claiming 2^50 variables.
  std::uint64_t index_offset = 0;
  std::memcpy(&index_offset, bytes.data() + bytes.size() - 12, 8);
  bytes.resize(static_cast<std::size_t>(index_offset));
  // Give the bogus index a *valid* CRC so the count check itself is what
  // trips, not the checksum.
  ByteWriter fake;
  fake.put_varint(std::uint64_t{1} << 50);
  fake.put(crc32c(fake.bytes()));
  for (const std::uint8_t byte : fake.bytes()) bytes.push_back(byte);
  ByteWriter trailer;
  trailer.put(index_offset);
  trailer.put(std::uint32_t{0x434C5A41u});
  for (const std::uint8_t byte : trailer.bytes()) bytes.push_back(byte);
  dump(file.path(), bytes);
  EXPECT_THROW(ArchiveReader{file.path()}, Error);
}

// --- tile-addressable region reads --------------------------------------

/// Asserts `win` (row-major over `ext`) equals the window [lo, lo+ext) of
/// `full`, bit for bit.
template <typename T>
void expect_window_equal(const NdArray<T>& full, const DimVec& lo,
                         const DimVec& ext, const NdArray<T>& win) {
  const Shape wshape{DimVec(ext)};
  ASSERT_EQ(win.shape(), wshape);
  for (std::size_t i = 0; i < wshape.size(); ++i) {
    DimVec g = wshape.coords(i);
    for (std::size_t d = 0; d < g.size(); ++d) g[d] += lo[d];
    ASSERT_EQ(std::memcmp(&win[i], &full[full.shape().offset(g)], sizeof(T)),
              0)
        << "window mismatch at linear " << i;
  }
}

TEST(ArchiveRegion, TiledVariableWindowMatchesFullRead) {
  TempFile file("region_tiled");
  const auto data = smooth_array({24, 20, 16}, 60);
  {
    ArchiveWriter w(file.path());
    w.set_tile({8, 10, 8});
    w.add_variable("TEMP", data, 1e-3, PipelineConfig::defaults(3));
    w.finish();
  }
  ArchiveReader r(file.path());
  const DimVec lo{9, 2, 1};
  const DimVec ext{8, 11, 9};
  RegionStats rs;
  const auto win = r.read_region("TEMP", lo, ext, nullptr, &rs);
  expect_window_equal(r.read("TEMP"), lo, ext, win);
  // The window must cost a strict subset of the frame, and the reader
  // must have decoded only intersecting tiles.
  EXPECT_GT(rs.tiles_total, rs.tiles_intersecting);
  EXPECT_EQ(rs.tiles_decoded, rs.tiles_intersecting);
  EXPECT_LT(rs.compressed_bytes_touched, rs.frame_compressed_bytes);
}

TEST(ArchiveRegion, WarmTileCacheServesWindowWithZeroDecodes) {
  TempFile file("region_cache");
  const auto data = smooth_array({24, 20, 16}, 61);
  {
    ArchiveWriter w(file.path());
    w.set_tile({8, 10, 8});
    w.add_variable("TEMP", data, 1e-3, PipelineConfig::defaults(3));
    w.finish();
  }
  ArchiveReader r(file.path());
  TileCache cache;
  const DimVec lo{5, 3, 2};
  const DimVec ext{10, 9, 8};
  RegionStats cold, warm;
  const auto a = r.read_region("TEMP", lo, ext, &cache, &cold);
  const auto b = r.read_region("TEMP", lo, ext, &cache, &warm);
  EXPECT_GT(cold.tiles_decoded, 0u);
  EXPECT_EQ(cold.tiles_from_cache, 0u);
  EXPECT_EQ(warm.tiles_decoded, 0u);
  EXPECT_EQ(warm.tiles_from_cache, warm.tiles_intersecting);
  EXPECT_EQ(cache.stats().hits, warm.tiles_from_cache);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST(ArchiveRegion, CacheKeysAreNamespacedPerVariable) {
  TempFile file("region_ns");
  const auto a = smooth_array({12, 10}, 62);
  const auto b = smooth_array({12, 10}, 63);
  {
    ArchiveWriter w(file.path());
    w.set_tile({6, 5});
    w.add_variable("A", a, 1e-3, PipelineConfig::defaults(2));
    w.add_variable("B", b, 1e-3, PipelineConfig::defaults(2));
    w.finish();
  }
  ArchiveReader r(file.path());
  TileCache cache;
  const DimVec lo{0, 0};
  const DimVec ext{6, 5};
  RegionStats rs;
  (void)r.read_region("A", lo, ext, &cache, nullptr);
  // Same tile index for variable B: must miss A's entries and decode.
  const auto win = r.read_region("B", lo, ext, &cache, &rs);
  EXPECT_EQ(rs.tiles_from_cache, 0u);
  EXPECT_EQ(rs.tiles_decoded, 1u);
  expect_window_equal(r.read("B"), lo, ext, win);
}

TEST(ArchiveRegion, Float64WindowAndWidthChecks) {
  TempFile file("region_f64");
  const Shape shape{DimVec{16, 12, 10}};
  NdArray<double> data{Shape{DimVec{16, 12, 10}}};
  Rng rng(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto c = shape.coords(i);
    data[i] = std::sin(0.1 * static_cast<double>(c[0] + c[1] + c[2])) +
              0.01 * rng.normal();
  }
  {
    ArchiveWriter w(file.path());
    w.set_tile({6, 5, 5});
    w.add_variable("Z", data, 1e-3, PipelineConfig::defaults(3));
    w.finish();
  }
  ArchiveReader r(file.path());
  const DimVec lo{3, 4, 2};
  const DimVec ext{9, 6, 7};
  const auto win = r.read_region_f64("Z", lo, ext);
  expect_window_equal(r.read_f64("Z"), lo, ext, win);
  // The float32 entry point must refuse a float64 variable, not garble it.
  try {
    (void)r.read_region("Z", lo, ext);
    FAIL() << "width mismatch accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadArgument);
  }
}

TEST(ArchiveRegion, NonChunkedVariableFallsBackToFullDecodeCrop) {
  TempFile file("region_small");
  const auto data = smooth_array({10, 8}, 65);  // far below chunk threshold
  {
    ArchiveWriter w(file.path());
    w.add_variable("S", data, 1e-3, PipelineConfig::defaults(2));
    w.finish();
  }
  ArchiveReader r(file.path());
  const DimVec lo{2, 3};
  const DimVec ext{5, 4};
  RegionStats rs;
  const auto win = r.read_region("S", lo, ext, nullptr, &rs);
  expect_window_equal(r.read("S"), lo, ext, win);
  // Fallback decodes the whole (single-record) frame.
  EXPECT_EQ(rs.tiles_total, 1u);
  EXPECT_EQ(rs.compressed_bytes_touched, rs.frame_compressed_bytes);
}

TEST(ArchiveRegion, SetTileBindsOnlyRankMatchingVariables) {
  TempFile file("region_rank");
  const auto v3 = smooth_array({12, 10, 8}, 66);
  const auto v2 = smooth_array({20, 20}, 67);
  {
    ArchiveWriter w(file.path());
    w.set_tile({6, 5, 4});  // rank 3: binds v3, leaves v2 alone
    w.add_variable("V3", v3, 1e-3, PipelineConfig::defaults(3));
    w.add_variable("V2", v2, 1e-3, PipelineConfig::defaults(2));
    w.finish();
  }
  ArchiveReader r(file.path());
  RegionStats rs3, rs2;
  const DimVec lo3{1, 1, 1}, ext3{4, 4, 3};
  const DimVec lo2{2, 2}, ext2{6, 6};
  expect_window_equal(r.read("V3"), lo3, ext3,
                      r.read_region("V3", lo3, ext3, nullptr, &rs3));
  expect_window_equal(r.read("V2"), lo2, ext2,
                      r.read_region("V2", lo2, ext2, nullptr, &rs2));
  EXPECT_EQ(rs3.tiles_total, 2u * 2u * 2u);  // tiled layout
  EXPECT_EQ(rs2.tiles_total, 1u);            // plain frame fallback
}

TEST(ArchiveRegion, BadRegionsAndCodecsAreRejected) {
  TempFile file("region_bad");
  const auto data = smooth_array({12, 10}, 68);
  {
    ArchiveWriter w(file.path());
    w.set_tile({6, 5});
    w.add_variable("A", data, 1e-3, PipelineConfig::defaults(2));
    w.add_variable_with("sz3", "blob", data, 1e-3);
    w.finish();
  }
  ArchiveReader r(file.path());
  const auto code_of = [&](const std::string& name, const DimVec& lo,
                           const DimVec& ext) {
    try {
      (void)r.read_region(name, lo, ext);
      return static_cast<int>(-1);
    } catch (const Error& e) {
      return static_cast<int>(e.code());
    }
  };
  // Out of bounds, arity mismatch, non-CliZ codec, unknown variable.
  EXPECT_EQ(code_of("A", {10, 0}, {4, 4}),
            static_cast<int>(ErrorCode::kBadArgument));
  EXPECT_EQ(code_of("A", {0}, {4}),
            static_cast<int>(ErrorCode::kBadArgument));
  EXPECT_EQ(code_of("blob", {0, 0}, {2, 2}),
            static_cast<int>(ErrorCode::kBadArgument));
  EXPECT_NE(code_of("nope", {0, 0}, {1, 1}), -1);
}

}  // namespace
}  // namespace cliz
