#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cliz {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIndexInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_index(1), 0u);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalProducesFiniteValues) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(std::isfinite(rng.normal()));
  }
}

}  // namespace
}  // namespace cliz
