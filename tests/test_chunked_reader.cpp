// ChunkedReader tests: the random-access decode contract. The property
// suite proves decompress_region is bit-identical to the matching window of
// a full decode across randomized shapes, tilings, regions and the whole
// predictor x entropy x lossless backend grid; the fault suite re-seals
// hostile CLK3 indexes (mutate records, recompute the header CRC) and
// checks they classify as CorruptStream/LimitExceeded before any
// payload-proportional work.
#include "src/core/chunked_reader.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <optional>
#include <vector>

#include "src/climate/datasets.hpp"
#include "src/common/bytestream.hpp"
#include "src/common/crc32c.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/chunked.hpp"
#include "src/core/tile_cache.hpp"

namespace cliz {
namespace {

template <typename T>
NdArray<T> smooth_array_t(const DimVec& dims, std::uint64_t seed) {
  const Shape shape(dims);
  NdArray<T> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += std::sin(0.09 * static_cast<double>(c[d]));
    }
    a[i] = static_cast<T>(v + 0.01 * rng.normal());
  }
  return a;
}

template <typename T>
std::vector<std::uint8_t> tiled_frame(const NdArray<T>& data,
                                      const DimVec& tile,
                                      const ClizOptions& codec = {}) {
  ChunkedOptions opts;
  opts.tile = tile;
  opts.codec = codec;
  return chunked_compress(data, 1e-3,
                          PipelineConfig::defaults(data.shape().ndims()),
                          nullptr, opts);
}

/// Asserts `win` (row-major over `ext`) is bit-identical to the window
/// [lo, lo+ext) of `full`.
template <typename T>
void expect_window_equal(const NdArray<T>& full,
                         std::span<const std::size_t> lo,
                         std::span<const std::size_t> ext,
                         std::span<const T> win) {
  const Shape wshape{DimVec(ext.begin(), ext.end())};
  ASSERT_EQ(win.size(), wshape.size());
  for (std::size_t i = 0; i < wshape.size(); ++i) {
    DimVec g = wshape.coords(i);
    for (std::size_t d = 0; d < g.size(); ++d) g[d] += lo[d];
    const T expected = full[full.shape().offset(g)];
    // Bit-identical, not approximately equal: the region path decodes the
    // very same tile streams the full decode does.
    ASSERT_EQ(std::memcmp(&win[i], &expected, sizeof(T)), 0)
        << "window mismatch at linear " << i;
  }
}

/// Draws a random non-empty in-bounds window of `dims`.
void random_window(Rng& rng, const DimVec& dims, DimVec& lo, DimVec& ext) {
  lo.resize(dims.size());
  ext.resize(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    lo[d] = rng.uniform_index(dims[d]);
    ext[d] = 1 + rng.uniform_index(dims[d] - lo[d]);
  }
}

template <typename T>
NdArray<T> full_decode(std::span<const std::uint8_t> frame) {
  if constexpr (std::is_same_v<T, double>) {
    return chunked_decompress_f64(frame);
  } else {
    return chunked_decompress(frame);
  }
}

template <typename T>
void check_region_equivalence(std::span<const std::uint8_t> frame,
                              std::uint64_t seed, int n_regions) {
  const NdArray<T> full = full_decode<T>(frame);
  const ChunkedReader reader(frame);
  ASSERT_EQ(reader.shape(), full.shape());
  Rng rng(seed);
  DimVec lo, ext;
  for (int r = 0; r < n_regions; ++r) {
    random_window(rng, full.shape().dims(), lo, ext);
    std::vector<T> win(Shape(DimVec(ext)).size());
    const RegionStats rs =
        reader.decompress_region(lo, ext, std::span<T>(win));
    expect_window_equal<T>(full, lo, ext, win);
    EXPECT_EQ(rs.tiles_decoded, rs.tiles_intersecting);
    EXPECT_LE(rs.compressed_bytes_touched, rs.frame_compressed_bytes);
  }
}

// --- round trip & addressing -------------------------------------------

TEST(ChunkedReaderTile, TiledFrameExposesGridAndRoundTrips) {
  const auto data = smooth_array_t<float>({24, 20, 16}, 31);
  const auto frame = tiled_frame(data, {8, 10, 8});
  const ChunkedReader reader(frame);
  EXPECT_EQ(reader.shape(), data.shape());
  EXPECT_EQ(reader.tiles().size(), 3u * 2u * 2u);
  EXPECT_EQ(reader.sample_bytes(), 4u);
  for (const TileRecord& t : reader.tiles()) {
    EXPECT_TRUE(t.has_crc);
    EXPECT_GE(t.n_bytes, 1u);
  }
  // Full-window region read == full decode, bit for bit.
  const auto full = chunked_decompress(frame);
  const DimVec lo(3, 0);
  std::vector<float> out(data.size());
  const RegionStats rs = reader.decompress_region(
      lo, data.shape().dims(), std::span<float>(out));
  EXPECT_EQ(rs.tiles_total, 12u);
  EXPECT_EQ(rs.tiles_intersecting, 12u);
  expect_window_equal<float>(full, lo, data.shape().dims(),
                             std::span<const float>(out));
}

TEST(ChunkedReaderTile, WindowTouchesOnlyIntersectingTiles) {
  const auto data = smooth_array_t<float>({24, 20, 16}, 32);
  const auto frame = tiled_frame(data, {8, 10, 8});
  const ChunkedReader reader(frame);
  // A window inside one tile decodes exactly that tile.
  const DimVec lo{9, 2, 1};
  const DimVec ext{4, 5, 6};
  std::vector<float> out(Shape(DimVec(ext)).size());
  const RegionStats rs = reader.decompress_region(lo, ext,
                                                  std::span<float>(out));
  EXPECT_EQ(rs.tiles_intersecting, 1u);
  EXPECT_EQ(rs.tiles_decoded, 1u);
  EXPECT_LT(rs.compressed_bytes_touched, rs.frame_compressed_bytes);
  expect_window_equal<float>(chunked_decompress(frame), lo, ext,
                             std::span<const float>(out));
}

TEST(ChunkedReaderTile, ZeroTileEntryMeansFullExtent) {
  const auto data = smooth_array_t<float>({12, 10, 8}, 33);
  // tile = {4, 0, 0}: slab-like tiles, but in the v3 indexed layout.
  const auto frame = tiled_frame(data, {4, 0, 0});
  const ChunkedReader reader(frame);
  EXPECT_EQ(reader.tiles().size(), 3u);
  check_region_equivalence<float>(frame, 331, 4);
}

TEST(ChunkedReaderTile, Float64Regions) {
  const auto data = smooth_array_t<double>({16, 12, 10}, 34);
  const auto frame = tiled_frame(data, {6, 5, 5});
  const ChunkedReader reader(frame);
  EXPECT_EQ(reader.sample_bytes(), 8u);
  check_region_equivalence<double>(frame, 341, 4);
}

TEST(ChunkedReaderTile, MaskedFieldRegionsPreserveFillValues) {
  const auto field = make_ssh(0.1, 902);
  ChunkedOptions opts;
  opts.tile = {20, 24, 20};
  const auto frame = chunked_compress(field.data, 1e-3,
                                      PipelineConfig::defaults(3),
                                      field.mask_ptr(), opts);
  check_region_equivalence<float>(frame, 902, 4);
}

// --- CLK2 / slab frames address like tiles ------------------------------

TEST(ChunkedReaderSlab, Clk2FrameRegionsMatchFullDecode) {
  const auto data = smooth_array_t<float>({30, 16, 18}, 35);
  ChunkedOptions opts;
  opts.chunks = 5;
  const auto frame = chunked_compress(data, 1e-3, PipelineConfig::defaults(3),
                                      nullptr, opts);
  const ChunkedReader reader(frame);
  EXPECT_EQ(reader.tiles().size(), 5u);
  // Slab records must carry recovered byte offsets usable for seeks.
  for (std::size_t i = 1; i < reader.tiles().size(); ++i) {
    EXPECT_GT(reader.tiles()[i].offset, reader.tiles()[i - 1].offset);
  }
  check_region_equivalence<float>(frame, 351, 5);
}

// --- property sweep: shapes x tilings x backends ------------------------

struct GridCase {
  DimVec dims;
  DimVec tile;
};

class ChunkedReaderProperty : public ::testing::TestWithParam<GridCase> {};

TEST_P(ChunkedReaderProperty, RegionMatchesFullDecodeWindow) {
  const auto& p = GetParam();
  const auto data = smooth_array_t<float>(p.dims, 7 + p.dims.size());
  check_region_equivalence<float>(tiled_frame(data, p.tile),
                                  p.dims.size() * 131, 5);
}

std::string grid_name(const ::testing::TestParamInfo<GridCase>& info) {
  std::string s = "d";
  for (const auto d : info.param.dims) {
    s += '_';
    s += std::to_string(d);
  }
  s += "_t";
  for (const auto t : info.param.tile) {
    s += '_';
    s += std::to_string(t);
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndTilings, ChunkedReaderProperty,
    ::testing::Values(GridCase{{64}, {10}},            // 1-D, ragged tail
                      GridCase{{40, 12}, {16, 5}},     // 2-D, both ragged
                      GridCase{{30, 16, 18}, {8, 5, 6}},
                      GridCase{{30, 16, 18}, {30, 16, 18}},  // single tile
                      GridCase{{12, 10, 6, 4}, {5, 4, 3, 2}}),
    grid_name);

TEST(ChunkedReaderProperty, AllBackendCombinationsServeRegions) {
  const DimVec dims{18, 12, 10};
  const auto data = smooth_array_t<float>(dims, 55);
  for (const auto predictor :
       {PredictorBackend::kInterp, PredictorBackend::kLorenzo1,
        PredictorBackend::kLorenzo2, PredictorBackend::kRegression}) {
    for (const auto entropy :
         {EntropyBackend::kHuffman, EntropyBackend::kTans}) {
      for (const auto lossless :
           {LosslessBackend::kLz, LosslessBackend::kStore}) {
        ClizOptions codec;
        codec.predictor = predictor;
        codec.entropy = entropy;
        codec.lossless = lossless;
        SCOPED_TRACE(::testing::Message()
                     << "predictor=" << static_cast<int>(predictor)
                     << " entropy=" << static_cast<int>(entropy)
                     << " lossless=" << static_cast<int>(lossless));
        check_region_equivalence<float>(
            tiled_frame(data, {7, 5, 6}, codec),
            101 + static_cast<std::uint64_t>(predictor) * 4 +
                static_cast<std::uint64_t>(entropy) * 2 +
                static_cast<std::uint64_t>(lossless),
            2);
      }
    }
  }
}

// --- caller-misuse checks ----------------------------------------------

TEST(ChunkedReaderTile, BadArgumentsAreRejected) {
  const auto data = smooth_array_t<float>({12, 10}, 36);
  const auto frame = tiled_frame(data, {6, 5});
  const ChunkedReader reader(frame);
  const auto code_of = [&](const DimVec& lo, const DimVec& ext,
                           std::size_t out_elems) {
    std::vector<float> buf(out_elems);
    try {
      (void)reader.decompress_region(lo, ext, std::span<float>(buf));
      return static_cast<int>(-1);
    } catch (const Error& e) {
      return static_cast<int>(e.code());
    }
  };
  // Arity mismatch.
  EXPECT_EQ(code_of({0}, {4}, 4),
            static_cast<int>(ErrorCode::kBadArgument));
  // Region out of bounds.
  EXPECT_EQ(code_of({10, 0}, {4, 4}, 16),
            static_cast<int>(ErrorCode::kBadArgument));
  // Zero-extent window.
  EXPECT_EQ(code_of({0, 0}, {0, 4}, 0),
            static_cast<int>(ErrorCode::kBadArgument));
  // Output span does not match the window.
  EXPECT_EQ(code_of({0, 0}, {4, 4}, 15),
            static_cast<int>(ErrorCode::kBadArgument));
}

// --- file-backed mode ---------------------------------------------------

TEST(ChunkedReaderFile, FetchModeMatchesInMemoryAndRetriesShortPrefix) {
  const auto data = smooth_array_t<float>({24, 20, 16}, 37);
  const auto frame = tiled_frame(data, {8, 10, 8});

  std::uint64_t fetched_bytes = 0;
  const ChunkedReader::Fetch fetch = [&](std::uint64_t off, std::uint64_t n,
                                         std::uint8_t* dst) {
    ASSERT_LE(off + n, frame.size());
    std::memcpy(dst, frame.data() + off, static_cast<std::size_t>(n));
    fetched_bytes += n;
  };

  // A too-short header prefix is the documented kCorruptStream retry
  // contract — grow it until the index parses (the archive reader's loop).
  std::optional<ChunkedReader> reader;
  std::size_t prefix = 16;
  int attempts = 0;
  for (;;) {
    ++attempts;
    try {
      reader.emplace(std::span(frame.data(), prefix), frame.size(), fetch);
      break;
    } catch (const Error& e) {
      ASSERT_EQ(e.code(), ErrorCode::kCorruptStream);
      ASSERT_LT(prefix, frame.size()) << "never parsed";
      prefix = std::min(frame.size(), prefix * 4);
    }
  }
  EXPECT_GT(attempts, 1);  // 16 bytes cannot hold a 12-tile index

  const DimVec lo{9, 2, 1};
  const DimVec ext{4, 5, 6};
  std::vector<float> out(Shape(DimVec(ext)).size());
  fetched_bytes = 0;
  const RegionStats rs =
      reader->decompress_region(lo, ext, std::span<float>(out));
  EXPECT_EQ(rs.tiles_decoded, 1u);
  // Only the intersecting tile's payload crossed the fetch boundary.
  EXPECT_EQ(fetched_bytes, rs.compressed_bytes_touched);
  EXPECT_LT(fetched_bytes, frame.size());
  expect_window_equal<float>(chunked_decompress(frame), lo, ext,
                             std::span<const float>(out));
}

TEST(ChunkedReaderFile, Clk2FetchModeServesRegions) {
  const auto data = smooth_array_t<float>({30, 16, 18}, 38);
  ChunkedOptions opts;
  opts.chunks = 4;
  const auto frame = chunked_compress(data, 1e-3, PipelineConfig::defaults(3),
                                      nullptr, opts);
  const ChunkedReader::Fetch fetch = [&](std::uint64_t off, std::uint64_t n,
                                         std::uint8_t* dst) {
    ASSERT_LE(off + n, frame.size());
    std::memcpy(dst, frame.data() + off, static_cast<std::size_t>(n));
  };
  std::optional<ChunkedReader> reader;
  std::size_t prefix = 64;
  for (;;) {
    try {
      reader.emplace(std::span(frame.data(), prefix), frame.size(), fetch);
      break;
    } catch (const Error& e) {
      ASSERT_EQ(e.code(), ErrorCode::kCorruptStream);
      ASSERT_LT(prefix, frame.size());
      prefix = std::min(frame.size(), prefix * 4);
    }
  }
  const auto full = chunked_decompress(frame);
  Rng rng(381);
  DimVec lo, ext;
  for (int r = 0; r < 3; ++r) {
    random_window(rng, data.shape().dims(), lo, ext);
    std::vector<float> out(Shape(DimVec(ext)).size());
    (void)reader->decompress_region(lo, ext, std::span<float>(out));
    expect_window_equal<float>(full, lo, ext, std::span<const float>(out));
  }
}

// --- TileCache integration ---------------------------------------------

TEST(ChunkedReaderTileCache, WarmWindowDecodesZeroTiles) {
  const auto data = smooth_array_t<float>({24, 20, 16}, 39);
  const auto frame = tiled_frame(data, {8, 10, 8});
  const ChunkedReader reader(frame);

  TileCache cache;
  ChunkedScratch scratch;
  RegionOptions opts;
  opts.cache = &cache;
  opts.scratch = &scratch;

  const DimVec lo{5, 3, 2};
  const DimVec ext{10, 9, 8};
  std::vector<float> a(Shape(DimVec(ext)).size());
  std::vector<float> b(a.size());

  const RegionStats cold =
      reader.decompress_region(lo, ext, std::span<float>(a), opts);
  EXPECT_GT(cold.tiles_intersecting, 1u);
  EXPECT_EQ(cold.tiles_decoded, cold.tiles_intersecting);
  EXPECT_EQ(cold.tiles_from_cache, 0u);

  const RegionStats warm =
      reader.decompress_region(lo, ext, std::span<float>(b), opts);
  EXPECT_EQ(warm.tiles_decoded, 0u);
  EXPECT_EQ(warm.tiles_from_cache, warm.tiles_intersecting);
  EXPECT_EQ(b, a);

  // Cache telemetry agrees and is mirrored into the scratch's StageStats.
  EXPECT_EQ(cache.stats().hits, warm.tiles_from_cache);
  EXPECT_EQ(cache.stats().misses, cold.tiles_decoded);
  EXPECT_EQ(scratch.stats.tile_cache_hits, warm.tiles_from_cache);
  EXPECT_EQ(scratch.stats.tile_cache_misses, cold.tiles_decoded);
}

TEST(ChunkedReaderTileCache, DistinctFramesDoNotShareEntries) {
  const auto a = smooth_array_t<float>({12, 10}, 40);
  const auto b = smooth_array_t<float>({12, 10}, 41);
  const auto fa = tiled_frame(a, {6, 5});
  const auto fb = tiled_frame(b, {6, 5});
  const ChunkedReader ra(fa);
  const ChunkedReader rb(fb);

  TileCache cache;
  RegionOptions opts;
  opts.cache = &cache;
  const DimVec lo{0, 0};
  const DimVec ext{6, 5};
  std::vector<float> out(Shape(DimVec(ext)).size());
  (void)ra.decompress_region(lo, ext, std::span<float>(out), opts);
  // Same tile index, different frame: must miss, not serve a's samples.
  const RegionStats rs =
      rb.decompress_region(lo, ext, std::span<float>(out), opts);
  EXPECT_EQ(rs.tiles_from_cache, 0u);
  EXPECT_EQ(rs.tiles_decoded, 1u);
  expect_window_equal<float>(chunked_decompress(fb), lo, ext,
                             std::span<const float>(out));
}

// --- hostile tile indexes ----------------------------------------------

/// Parsed CLK3 frame for the fault suite: mutate records, then re-seal
/// (recompute the header CRC) so corruption is structural, not a CRC
/// mismatch — unless the test wants exactly that.
struct Clk3Tile {
  DimVec origin;
  DimVec extent;
  std::uint64_t offset = 0;   ///< relative to the payload base
  std::uint64_t n_bytes = 0;
  std::uint32_t crc = 0;
};

struct Clk3Frame {
  DimVec dims;
  std::vector<Clk3Tile> tiles;
  std::vector<std::uint8_t> payload;
};

Clk3Frame parse_clk3(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  EXPECT_EQ(r.get<std::uint32_t>(), detail::kChunkedMagicV3);
  Clk3Frame f;
  f.dims.resize(r.get_varint());
  for (auto& d : f.dims) d = r.get_varint();
  f.tiles.resize(r.get_varint());
  for (auto& t : f.tiles) {
    t.origin.resize(f.dims.size());
    for (auto& o : t.origin) o = r.get_varint();
    t.extent.resize(f.dims.size());
    for (auto& e : t.extent) e = r.get_varint();
    t.offset = r.get_varint();
    t.n_bytes = r.get_varint();
    t.crc = r.get<std::uint32_t>();
  }
  (void)r.get<std::uint32_t>();  // header CRC, recomputed on rebuild
  f.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(r.pos()),
                   bytes.end());
  return f;
}

struct BuildTweaks {
  std::optional<std::uint64_t> declared_tiles;  ///< lie about the count
  bool corrupt_header_crc = false;
};

std::vector<std::uint8_t> build_clk3(const Clk3Frame& f,
                                     const BuildTweaks& tweaks = {}) {
  ByteWriter w;
  w.put(detail::kChunkedMagicV3);
  w.put_varint(f.dims.size());
  for (const auto d : f.dims) w.put_varint(d);
  w.put_varint(tweaks.declared_tiles.value_or(f.tiles.size()));
  for (const auto& t : f.tiles) {
    for (const auto o : t.origin) w.put_varint(o);
    for (const auto e : t.extent) w.put_varint(e);
    w.put_varint(t.offset);
    w.put_varint(t.n_bytes);
    w.put(t.crc);
  }
  std::uint32_t crc = crc32c(w.bytes().subspan(sizeof(std::uint32_t)));
  if (tweaks.corrupt_header_crc) crc ^= 0x1;
  w.put(crc);
  w.put_bytes(f.payload);
  return std::move(w).take();
}

class ChunkedReaderFault : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto data = smooth_array_t<float>({16, 12, 10}, 50);
    frame_ = tiled_frame(data, {8, 6, 5});  // 2x2x2 = 8 tiles
    parsed_ = parse_clk3(frame_);
    ASSERT_EQ(parsed_.tiles.size(), 8u);
  }

  /// Expects ChunkedReader construction over `bytes` to throw `code`.
  static void expect_reader_error(std::span<const std::uint8_t> bytes,
                                  ErrorCode code,
                                  const ResourceLimits& limits = {}) {
    try {
      const ChunkedReader reader(bytes, limits);
      FAIL() << "hostile index accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), code) << e.what();
    }
  }

  std::vector<std::uint8_t> frame_;
  Clk3Frame parsed_;
};

TEST_F(ChunkedReaderFault, ValidFrameRebuildsByteIdentical) {
  // The mutate-and-reseal helper must be faithful, or every fault below
  // would be testing the helper instead of the validator.
  EXPECT_EQ(build_clk3(parsed_), frame_);
}

TEST_F(ChunkedReaderFault, TruncatedIndex) {
  for (const std::size_t keep : {5ul, 9ul, 30ul}) {
    expect_reader_error(std::span(frame_.data(), keep),
                        ErrorCode::kCorruptStream);
  }
}

TEST_F(ChunkedReaderFault, BadHeaderCrc) {
  BuildTweaks tweaks;
  tweaks.corrupt_header_crc = true;
  expect_reader_error(build_clk3(parsed_, tweaks), ErrorCode::kCorruptStream);
}

TEST_F(ChunkedReaderFault, FlippedRecordByteFailsHeaderCrc) {
  auto f = parsed_;
  f.tiles[3].origin[1] += 1;
  // Reserialize WITHOUT resealing: splice the stale CRC back in by
  // rebuilding and restoring the original trailing header CRC bytes is
  // fiddly, so instead flip a byte in the original frame's index region.
  auto bytes = frame_;
  bytes[6] ^= 0x40;  // inside the dims varints
  expect_reader_error(bytes, ErrorCode::kCorruptStream);
}

TEST_F(ChunkedReaderFault, ExtentOverflowsDeclaredShape) {
  auto f = parsed_;
  f.tiles[0].extent[0] = f.dims[0] + 5;
  expect_reader_error(build_clk3(f), ErrorCode::kCorruptStream);
}

TEST_F(ChunkedReaderFault, OriginPastDeclaredShape) {
  auto f = parsed_;
  f.tiles[7].origin[2] = f.dims[2] + 1;
  expect_reader_error(build_clk3(f), ErrorCode::kCorruptStream);
}

TEST_F(ChunkedReaderFault, OverlappingTiles) {
  auto f = parsed_;
  f.tiles[1].origin = f.tiles[0].origin;
  f.tiles[1].extent = f.tiles[0].extent;
  expect_reader_error(build_clk3(f), ErrorCode::kCorruptStream);
}

TEST_F(ChunkedReaderFault, GapInTileGrid) {
  auto f = parsed_;
  f.tiles[0].extent[2] -= 1;  // leaves an uncovered plane
  expect_reader_error(build_clk3(f), ErrorCode::kCorruptStream);
}

TEST_F(ChunkedReaderFault, PayloadRangeOutOfBounds) {
  auto f = parsed_;
  f.tiles.back().n_bytes += f.payload.size();
  expect_reader_error(build_clk3(f), ErrorCode::kCorruptStream);
}

TEST_F(ChunkedReaderFault, PayloadOffsetPastFrame) {
  auto f = parsed_;
  f.tiles[0].offset = f.payload.size() + 100;
  expect_reader_error(build_clk3(f), ErrorCode::kCorruptStream);
}

TEST_F(ChunkedReaderFault, OverlappingPayloadRanges) {
  auto f = parsed_;
  f.tiles[1].offset = f.tiles[0].offset;
  expect_reader_error(build_clk3(f), ErrorCode::kCorruptStream);
}

TEST_F(ChunkedReaderFault, ZeroLengthPayload) {
  auto f = parsed_;
  f.tiles[2].n_bytes = 0;
  expect_reader_error(build_clk3(f), ErrorCode::kCorruptStream);
}

TEST_F(ChunkedReaderFault, DeclaredExtentBombIsLimitExceeded) {
  // Product of dims past ResourceLimits::max_extents must refuse before
  // the records are even parsed — no allocation proportional to the lie.
  auto f = parsed_;
  f.dims = {std::size_t{1} << 12, std::size_t{1} << 12, std::size_t{1} << 13};
  expect_reader_error(build_clk3(f), ErrorCode::kLimitExceeded);
}

TEST_F(ChunkedReaderFault, DeclaredTileCountBombIsLimitExceeded) {
  // A declared count past max_chunks refuses before any structural work;
  // the records backing the lie do not even exist in the frame.
  BuildTweaks tweaks;
  tweaks.declared_tiles = std::uint64_t{1} << 30;
  expect_reader_error(build_clk3(parsed_, tweaks), ErrorCode::kLimitExceeded);
}

TEST_F(ChunkedReaderFault, TightenedTileBudgetIsLimitExceeded) {
  ResourceLimits limits;
  limits.max_chunks = 4;  // frame has 8 perfectly valid tiles
  expect_reader_error(frame_, ErrorCode::kLimitExceeded, limits);
}

TEST_F(ChunkedReaderFault, CorruptTilePayloadFailsOnDecodeNotConstruction) {
  auto bytes = frame_;
  // Flip a payload byte of tile 0 (header untouched, so construction —
  // which only validates the index — succeeds).
  const std::size_t payload_base = bytes.size() - parsed_.payload.size();
  bytes[payload_base + 4] ^= 0xFF;
  const ChunkedReader reader(bytes);

  const DimVec lo(3, 0);
  const DimVec ext{2, 2, 2};  // inside tile 0
  std::vector<float> out(8);
  try {
    (void)reader.decompress_region(lo, ext, std::span<float>(out));
    FAIL() << "corrupt payload decoded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptStream) << e.what();
  }
  // A window over the *other* tiles still decodes fine.
  const DimVec lo2{8, 6, 5};
  const DimVec ext2{8, 6, 5};
  std::vector<float> out2(Shape(DimVec(ext2)).size());
  const RegionStats rs =
      reader.decompress_region(lo2, ext2, std::span<float>(out2));
  EXPECT_EQ(rs.tiles_decoded, 1u);
}

TEST_F(ChunkedReaderFault, FullDecodeClassifiesHostileIndexToo) {
  // The unified decode path shares the validator: the same hostile frames
  // refuse identically through chunked_decompress.
  auto f = parsed_;
  f.tiles[1].offset = f.tiles[0].offset;
  const auto bytes = build_clk3(f);
  try {
    (void)chunked_decompress(bytes);
    FAIL() << "hostile index accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptStream) << e.what();
  }
}

}  // namespace
}  // namespace cliz
