#include "src/common/bytestream.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace cliz {
namespace {

TEST(ByteStream, FixedWidthRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put<std::uint16_t>(0x1234);
  w.put<std::uint32_t>(0xDEADBEEF);
  w.put<std::uint64_t>(0x0123456789ABCDEFull);
  w.put<float>(3.14f);
  w.put<double>(-2.718281828);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get<std::uint16_t>(), 0x1234);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<std::uint64_t>(), 0x0123456789ABCDEFull);
  EXPECT_FLOAT_EQ(r.get<float>(), 3.14f);
  EXPECT_DOUBLE_EQ(r.get<double>(), -2.718281828);
  EXPECT_TRUE(r.exhausted());
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, Encodes) {
  ByteWriter w;
  w.put_varint(GetParam());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_varint(), GetParam());
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 129ull, 16383ull, 16384ull,
                      (1ull << 32) - 1, 1ull << 32, (1ull << 56) + 123,
                      std::numeric_limits<std::uint64_t>::max()));

class SvarintRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SvarintRoundTrip, Encodes) {
  ByteWriter w;
  w.put_svarint(GetParam());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_svarint(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, SvarintRoundTrip,
    ::testing::Values(std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                      std::int64_t{63}, std::int64_t{-64}, std::int64_t{64},
                      std::int64_t{-12345678}, std::int64_t{12345678},
                      std::numeric_limits<std::int64_t>::min(),
                      std::numeric_limits<std::int64_t>::max()));

TEST(ByteStream, SmallVarintsAreOneByte) {
  ByteWriter w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
}

TEST(ByteStream, BlocksRoundTrip) {
  ByteWriter inner;
  inner.put<std::uint32_t>(42);
  ByteWriter w;
  w.put_block(inner.bytes());
  w.put_string("hello cliz");
  ByteReader r(w.bytes());
  ByteReader ir(r.get_block());
  EXPECT_EQ(ir.get<std::uint32_t>(), 42u);
  EXPECT_EQ(r.get_string(), "hello cliz");
}

TEST(ByteStream, TruncatedReadsThrow) {
  ByteWriter w;
  w.put<std::uint16_t>(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_THROW(r.get<std::uint32_t>(), Error);
}

TEST(ByteStream, TruncatedVarintThrows) {
  const std::uint8_t bad[] = {0x80};  // continuation bit but no next byte
  ByteReader r(bad);
  EXPECT_THROW(r.get_varint(), Error);
}

TEST(ByteStream, OverlongVarintThrows) {
  // 11 bytes of continuation: more than 64 bits of payload.
  std::vector<std::uint8_t> bad(11, 0x80);
  bad.back() = 0x01;
  ByteReader r(bad);
  EXPECT_THROW(r.get_varint(), Error);
}

TEST(ByteStream, BlockLengthBeyondStreamThrows) {
  ByteWriter w;
  w.put_varint(1000);  // claims 1000 bytes follow
  w.put_u8(1);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_block(), Error);
}

TEST(ByteStream, RemainingAndPos) {
  ByteWriter w;
  w.put<std::uint32_t>(1);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 4u);
  r.get_u8();
  EXPECT_EQ(r.pos(), 1u);
  EXPECT_EQ(r.remaining(), 3u);
}

}  // namespace
}  // namespace cliz
