#include "src/sz3/lorenzo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/metrics/metrics.hpp"
#include "src/sz3/sz3.hpp"

namespace cliz {
namespace {

NdArray<float> smooth_array(const DimVec& dims, std::uint64_t seed,
                            double noise = 0.01) {
  const Shape shape(dims);
  NdArray<float> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 100.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += 3.0 * std::sin(0.07 * static_cast<double>(c[d]) +
                          static_cast<double>(d));
    }
    a[i] = static_cast<float>(v + noise * rng.normal());
  }
  return a;
}

struct LorenzoCase {
  DimVec dims;
  double eb;
};

class LorenzoRoundTrip : public ::testing::TestWithParam<LorenzoCase> {};

TEST_P(LorenzoRoundTrip, BoundHoldsEverywhere) {
  const auto& [dims, eb] = GetParam();
  const auto data = smooth_array(dims, 91);
  const auto stream = LorenzoCompressor().compress(data, eb);
  const auto recon = LorenzoCompressor::decompress(stream);
  ASSERT_EQ(recon.shape(), data.shape());
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, eb);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LorenzoRoundTrip,
    ::testing::Values(LorenzoCase{{200}, 1e-3}, LorenzoCase{{40, 44}, 1e-2},
                      LorenzoCase{{40, 44}, 1e-5},
                      LorenzoCase{{12, 14, 16}, 1e-3},
                      LorenzoCase{{5, 6, 7, 8}, 1e-3},
                      LorenzoCase{{1, 50}, 1e-3}));

TEST(Lorenzo, PredictionIsExactOnMultilinearFields) {
  // First-order Lorenzo reproduces f(x, y) = a + bx + cy + dxy exactly, so
  // such a field quantizes to all-zero bins (tiny stream).
  const Shape shape({32, 32});
  NdArray<float> data(shape);
  for (std::size_t x = 0; x < 32; ++x) {
    for (std::size_t y = 0; y < 32; ++y) {
      data[x * 32 + y] = static_cast<float>(
          2.0 + 0.5 * static_cast<double>(x) - 0.25 * static_cast<double>(y) +
          0.01 * static_cast<double>(x * y));
    }
  }
  const auto stream = LorenzoCompressor().compress(data, 1e-4);
  EXPECT_LT(stream.size(), 400u);
  const auto recon = LorenzoCompressor::decompress(stream);
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-4);
}

TEST(Lorenzo, ComparableToInterpolationOnWhiteNoise) {
  // On uncorrelated data with a tight bound neither predictor helps much;
  // both must land near the entropy floor rather than blowing up.
  const Shape shape({64, 64});
  NdArray<float> data(shape);
  Rng rng(92);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(rng.normal());
  }
  const double eb = 1e-4;
  const auto lorenzo = LorenzoCompressor().compress(data, eb);
  const auto interp = Sz3Compressor().compress(data, eb);
  EXPECT_LE(lorenzo.size(), interp.size() + interp.size() / 10);
  EXPECT_LE(interp.size(), lorenzo.size() + lorenzo.size() / 10);
}

TEST(Lorenzo, InterpolationBeatsLorenzoOnSmoothData) {
  const auto data = smooth_array({48, 48}, 93, 0.0);
  const auto lorenzo = LorenzoCompressor().compress(data, 1e-3);
  const auto interp = Sz3Compressor().compress(data, 1e-3);
  EXPECT_LT(interp.size(), lorenzo.size());
}

TEST(Lorenzo, CorruptStreamThrows) {
  const auto data = smooth_array({16, 16}, 94);
  auto stream = LorenzoCompressor().compress(data, 1e-3);
  stream.resize(stream.size() / 2);
  EXPECT_THROW((void)LorenzoCompressor::decompress(stream), Error);
}

TEST(Lorenzo, DeterministicOutput) {
  const auto data = smooth_array({20, 20}, 95);
  EXPECT_EQ(LorenzoCompressor().compress(data, 1e-3),
            LorenzoCompressor().compress(data, 1e-3));
}

TEST(Lorenzo, RejectsNonPositiveBound) {
  const auto data = smooth_array({8}, 96);
  EXPECT_THROW((void)LorenzoCompressor().compress(data, 0.0), Error);
}

}  // namespace
}  // namespace cliz
