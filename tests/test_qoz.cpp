#include "src/qoz/qoz.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/metrics/metrics.hpp"
#include "src/sz3/sz3.hpp"

namespace cliz {
namespace {

/// Field that is much smoother along the last dim than the first, so order
/// tuning has something to find.
NdArray<float> anisotropic_array(const DimVec& dims, std::uint64_t seed) {
  const Shape shape(dims);
  NdArray<float> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 10.0 * std::sin(1.1 * static_cast<double>(c[0]));
    for (std::size_t d = 1; d < c.size(); ++d) {
      v += 2.0 * std::sin(0.03 * static_cast<double>(c[d]));
    }
    a[i] = static_cast<float>(v + 0.01 * rng.normal());
  }
  return a;
}

struct QozCase {
  DimVec dims;
  double eb;
};

class QozRoundTrip : public ::testing::TestWithParam<QozCase> {};

TEST_P(QozRoundTrip, BoundHoldsEverywhere) {
  const auto& [dims, eb] = GetParam();
  const auto data = anisotropic_array(dims, 21);
  const auto stream = QozCompressor().compress(data, eb);
  const auto recon = QozCompressor::decompress(stream);
  ASSERT_EQ(recon.shape(), data.shape());
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, eb);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QozRoundTrip,
    ::testing::Values(QozCase{{128}, 1e-3}, QozCase{{40, 44}, 1e-2},
                      QozCase{{40, 44}, 1e-4}, QozCase{{12, 18, 22}, 1e-3},
                      QozCase{{12, 18, 22}, 1e-1},
                      QozCase{{5, 6, 7, 4}, 1e-3}));

TEST(Qoz, OrderTuningBeatsStorageOrderOnAnisotropicData) {
  // Rough first dimension: storage-order SZ3 interpolates along it last
  // (cheaply) anyway, so build the adversarial case: rough LAST dimension.
  const Shape shape({32, 32, 32});
  NdArray<float> data(shape);
  Rng rng(31);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto c = shape.coords(i);
    data[i] = static_cast<float>(
        10.0 * std::sin(1.3 * static_cast<double>(c[2])) +
        std::sin(0.05 * static_cast<double>(c[0])) +
        std::sin(0.05 * static_cast<double>(c[1])) + 0.005 * rng.normal());
  }
  Sz3Options sopts;
  sopts.force_fitting = true;
  sopts.fitting = FittingKind::kCubic;
  const auto sz3 = Sz3Compressor(sopts).compress(data, 1e-3);
  const auto qoz = QozCompressor().compress(data, 1e-3);
  EXPECT_LT(qoz.size(), sz3.size());
}

TEST(Qoz, DisablingOrderTuningStillRoundTrips) {
  QozOptions opts;
  opts.tune_order = false;
  const auto data = anisotropic_array({24, 24}, 5);
  const auto stream = QozCompressor(opts).compress(data, 1e-3);
  const auto recon = QozCompressor::decompress(stream);
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3);
}

TEST(Qoz, PerPassFittingMixesKinds) {
  // A field cubic-friendly along one axis and noisy along another should
  // exercise both fitting kinds across passes; correctness is what we
  // assert (the stream stores one bit per pass).
  const Shape shape({64, 64});
  NdArray<float> data(shape);
  Rng rng(77);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto c = shape.coords(i);
    const double t = static_cast<double>(c[1]) / 63.0;
    data[i] = static_cast<float>(t * t * t +
                                 0.3 * rng.normal() *
                                     (c[0] % 2 == 0 ? 1.0 : 0.0));
  }
  const auto stream = QozCompressor().compress(data, 1e-2);
  const auto recon = QozCompressor::decompress(stream);
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-2);
}

TEST(Qoz, DeterministicOutput) {
  const auto data = anisotropic_array({20, 20}, 9);
  EXPECT_EQ(QozCompressor().compress(data, 1e-3),
            QozCompressor().compress(data, 1e-3));
}

TEST(Qoz, CorruptStreamThrows) {
  const auto data = anisotropic_array({16, 16}, 2);
  auto stream = QozCompressor().compress(data, 1e-3);
  stream.resize(stream.size() / 2);
  EXPECT_THROW((void)QozCompressor::decompress(stream), Error);
}

TEST(Qoz, RejectsNonPositiveBound) {
  const auto data = anisotropic_array({8, 8}, 3);
  EXPECT_THROW((void)QozCompressor().compress(data, 0.0), Error);
}

}  // namespace
}  // namespace cliz
