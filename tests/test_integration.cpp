// End-to-end integration tests: the full offline-tune -> compress ->
// decompress workflow on the synthetic Table III datasets, and the headline
// cross-compressor comparisons the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "src/climate/datasets.hpp"
#include "src/core/autotune.hpp"
#include "src/core/cliz.hpp"
#include "src/core/compressor.hpp"
#include "src/metrics/metrics.hpp"
#include "src/sz3/sz3.hpp"

namespace cliz {
namespace {

class DatasetEndToEnd : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetEndToEnd, TuneCompressDecompressWithinBound) {
  const auto field = make_dataset(GetParam(), 0.1);
  const double eb =
      abs_bound_from_relative(field.data.flat(), 1e-3, field.mask_ptr());

  AutotuneOptions opts;
  opts.time_dim = field.time_dim;
  opts.sampling_rate = 0.02;
  const auto tuned = autotune(field.data, eb, field.mask_ptr(), opts);

  const ClizCompressor codec(tuned.best);
  const auto stream = codec.compress(field.data, eb, field.mask_ptr());
  const auto recon = ClizCompressor::decompress(stream);

  const auto stats =
      error_stats(field.data.flat(), recon.flat(), field.mask_ptr());
  EXPECT_LE(stats.max_abs_error, eb) << tuned.best.label();

  const double ratio =
      compression_ratio(field.data.size() * sizeof(float), stream.size());
  EXPECT_GT(ratio, 4.0) << tuned.best.label();
}

INSTANTIATE_TEST_SUITE_P(TableThree, DatasetEndToEnd,
                         ::testing::Values("SSH", "CESM-T", "RELHUM",
                                           "SOILLIQ", "Tsfc", "Hurricane-T"));

TEST(Integration, ClizBeatsSz3OnMaskedPeriodicData) {
  // The paper's headline: on SSH-like data (mask + annual cycle) CliZ's
  // climate-specific pipeline must clearly outperform SZ3.
  const auto field = make_ssh(0.15, 700);
  const double eb =
      abs_bound_from_relative(field.data.flat(), 1e-3, field.mask_ptr());

  AutotuneOptions opts;
  opts.time_dim = field.time_dim;
  opts.sampling_rate = 0.02;
  const auto tuned = autotune(field.data, eb, field.mask_ptr(), opts);
  const auto cliz_stream =
      ClizCompressor(tuned.best).compress(field.data, eb, field.mask_ptr());
  const auto sz3_stream = Sz3Compressor().compress(field.data, eb);

  EXPECT_LT(cliz_stream.size() * 2, sz3_stream.size())
      << "CliZ should at least halve SZ3's size on masked periodic data";
}

TEST(Integration, SharedPipelineTransfersAcrossFieldsOfSameModel) {
  // Paper: a pipeline tuned on one field/snapshot applies to the others of
  // the same model. Tune on one SSH realization, compress another.
  const auto train = make_ssh(0.12, 701);
  const auto test = make_ssh(0.12, 702);
  const double eb = 1e-3;

  AutotuneOptions opts;
  opts.time_dim = train.time_dim;
  opts.sampling_rate = 0.02;
  const auto tuned = autotune(train.data, eb, train.mask_ptr(), opts);

  const ClizCompressor codec(tuned.best);
  const auto stream = codec.compress(test.data, eb, test.mask_ptr());
  const auto recon = ClizCompressor::decompress(stream);
  const auto stats =
      error_stats(test.data.flat(), recon.flat(), test.mask_ptr());
  EXPECT_LE(stats.max_abs_error, eb);
  EXPECT_GT(compression_ratio(test.data.size() * 4, stream.size()), 8.0);
}

TEST(Integration, RateDistortionMonotoneAcrossBounds) {
  const auto field = make_ssh(0.1, 703);
  AutotuneOptions opts;
  opts.time_dim = field.time_dim;
  opts.sampling_rate = 0.02;
  const double base_eb =
      abs_bound_from_relative(field.data.flat(), 1e-3, field.mask_ptr());
  const auto tuned = autotune(field.data, base_eb, field.mask_ptr(), opts);
  const ClizCompressor codec(tuned.best);

  double prev_size = 0.0;
  double prev_psnr = 1e9;
  for (const double rel : {1e-2, 1e-3, 1e-4}) {
    const double eb =
        abs_bound_from_relative(field.data.flat(), rel, field.mask_ptr());
    const auto stream = codec.compress(field.data, eb, field.mask_ptr());
    const auto recon = ClizCompressor::decompress(stream);
    const auto stats =
        error_stats(field.data.flat(), recon.flat(), field.mask_ptr());
    EXPECT_LE(stats.max_abs_error, eb);
    // Tighter bound -> bigger stream, higher PSNR.
    EXPECT_GT(static_cast<double>(stream.size()), prev_size);
    EXPECT_LT(prev_psnr, stats.psnr + 1e9);  // sanity ordering guard
    prev_size = static_cast<double>(stream.size());
    prev_psnr = stats.psnr;
  }
}

TEST(Integration, AllCompressorsAgreeOnBoundForHurricane) {
  const auto field = make_hurricane_t(0.12, 704);
  const double eb = abs_bound_from_relative(field.data.flat(), 1e-3);
  for (const auto& name : compressor_names()) {
    auto comp = make_compressor(name);
    const auto stream = comp->compress(field.data, eb);
    const auto recon = comp->decompress(stream);
    const auto stats = error_stats(field.data.flat(), recon.flat());
    EXPECT_LE(stats.max_abs_error, eb) << name;
  }
}

}  // namespace
}  // namespace cliz
