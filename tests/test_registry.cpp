#include "src/core/compressor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/climate/datasets.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/common/timer.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

NdArray<float> smooth_array(const DimVec& dims, std::uint64_t seed) {
  const Shape shape(dims);
  NdArray<float> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 0.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += std::sin(0.1 * static_cast<double>(c[d]));
    }
    a[i] = static_cast<float>(v + 0.01 * rng.normal());
  }
  return a;
}

TEST(Registry, NamesAreStable) {
  const auto names = compressor_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "cliz");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_compressor("gzip"), Error);
  EXPECT_THROW((void)make_compressor(""), Error);
}

class RegistryRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryRoundTrip, CompressorHonoursBoundThroughInterface) {
  const auto comp = make_compressor(GetParam());
  EXPECT_EQ(comp->name(), GetParam());
  const auto data = smooth_array({20, 22, 24}, 7);
  const double eb = 1e-3;
  const auto stream = comp->compress(data, eb);
  const auto recon = comp->decompress(stream);
  ASSERT_EQ(recon.shape(), data.shape());
  EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, eb);
}

INSTANTIATE_TEST_SUITE_P(All, RegistryRoundTrip,
                         ::testing::Values("cliz", "sz3", "qoz", "zfp",
                                           "sperr", "sz2"));

TEST(Registry, ClizUsesMaskWhenProvided) {
  auto field = make_ssh(0.12, 600);
  auto comp = make_compressor("cliz");
  comp->set_time_dim(field.time_dim);

  const double eb = abs_bound_from_relative(field.data.flat(), 1e-3,
                                            field.mask_ptr());
  const auto blind = comp->compress(field.data, eb);
  comp->set_mask(field.mask_ptr());
  const auto masked = comp->compress(field.data, eb);
  EXPECT_LT(masked.size(), blind.size());

  const auto recon = comp->decompress(masked);
  const auto stats =
      error_stats(field.data.flat(), recon.flat(), field.mask_ptr());
  EXPECT_LE(stats.max_abs_error, eb);
}

TEST(Registry, ClizReusesTunedPipelineAcrossCalls) {
  auto field = make_ssh(0.12, 601);
  auto comp = make_compressor("cliz");
  comp->set_mask(field.mask_ptr());
  comp->set_time_dim(field.time_dim);
  const double eb = 1e-3;
  // First call tunes; the second must be noticeably cheaper (no tuning).
  Timer t1;
  (void)comp->compress(field.data, eb);
  const double first = t1.seconds();
  Timer t2;
  (void)comp->compress(field.data, eb);
  const double second = t2.seconds();
  EXPECT_LT(second, first);
}

TEST(Registry, BaselinesIgnoreMask) {
  // set_mask on the SZ-family baselines must be a harmless no-op.
  const auto data = smooth_array({16, 16}, 9);
  const auto mask = MaskMap::from_fill_values(data);
  for (const auto& name : {"sz3", "qoz", "zfp", "sperr"}) {
    auto comp = make_compressor(name);
    comp->set_mask(&mask);
    comp->set_time_dim(0);
    const auto stream = comp->compress(data, 1e-3);
    const auto recon = comp->decompress(stream);
    EXPECT_LE(error_stats(data.flat(), recon.flat()).max_abs_error, 1e-3)
        << name;
  }
}

}  // namespace
}  // namespace cliz
