#pragma once

// Deterministic fault generators for the integrity matrix test: seeded bit
// flips, systematic truncations, and cross-stream splices over compressed
// frames. Every case is a pure function of (input bytes, seed), so a
// failing case reproduces from its label alone. Test-only header — lives
// beside the tests, not in src/.

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.hpp"

namespace cliz::fault {

struct Fault {
  std::string label;   ///< "flip@123:5", "trunc@64", "splice a[10..50)->b@7"
  std::vector<std::uint8_t> bytes;
};

/// `n` seeded mutations: 1-4 bit flips each, positions/bits drawn from the
/// seeded PRNG.
inline std::vector<Fault> bit_flip_cases(std::span<const std::uint8_t> stream,
                                         std::size_t n, std::uint64_t seed) {
  std::vector<Fault> out;
  if (stream.empty()) return out;
  Rng rng(seed);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Fault f;
    f.bytes.assign(stream.begin(), stream.end());
    const std::size_t flips = 1 + rng.uniform_index(4);
    f.label = "flip";
    for (std::size_t k = 0; k < flips; ++k) {
      const std::size_t byte = rng.uniform_index(f.bytes.size());
      const auto bit = static_cast<unsigned>(rng.uniform_index(8));
      f.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      f.label.append("@").append(std::to_string(byte));
      f.label.append(":").append(std::to_string(bit));
    }
    out.push_back(std::move(f));
  }
  return out;
}

/// Truncations at `n` evenly spaced cut points, always including the empty
/// stream and the off-by-one cut.
inline std::vector<Fault> truncation_cases(
    std::span<const std::uint8_t> stream, std::size_t n) {
  std::vector<Fault> out;
  if (stream.empty()) return out;
  std::vector<std::size_t> cuts{0, stream.size() - 1};
  const std::size_t step = std::max<std::size_t>(1, stream.size() / (n + 1));
  for (std::size_t cut = step; cut < stream.size(); cut += step) {
    cuts.push_back(cut);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  out.reserve(cuts.size());
  for (const std::size_t cut : cuts) {
    Fault f;
    f.label = "trunc@" + std::to_string(cut);
    f.bytes.assign(stream.begin(),
                   stream.begin() + static_cast<std::ptrdiff_t>(cut));
    out.push_back(std::move(f));
  }
  return out;
}

/// Index of the first byte where two streams differ; min(a.size(),
/// b.size()) when one is a prefix of the other (or they are identical).
/// The fuzz matrices use this to locate a header field (entropy byte,
/// predictor byte, framing layout) as the first divergence between two
/// encodings of the same data that differ only in that knob.
inline std::size_t first_divergence(std::span<const std::uint8_t> a,
                                    std::span<const std::uint8_t> b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}

/// Targeted single-byte overrides: one fault per value in `values`, each a
/// copy of `stream` with the byte at `pos` replaced. Used to probe fields
/// with a known offset (e.g. the entropy-backend id byte) for every
/// reserved/unknown value rather than trusting seeded flips to land there.
inline std::vector<Fault> byte_override_cases(
    std::span<const std::uint8_t> stream, std::size_t pos,
    std::span<const std::uint8_t> values) {
  std::vector<Fault> out;
  if (pos >= stream.size()) return out;
  out.reserve(values.size());
  for (const std::uint8_t v : values) {
    Fault f;
    f.label = "override@" + std::to_string(pos) + "=" + std::to_string(v);
    f.bytes.assign(stream.begin(), stream.end());
    f.bytes[pos] = v;
    out.push_back(std::move(f));
  }
  return out;
}

/// `n` seeded splices of windows from `donor` into copies of `stream`
/// (same-extent overwrite — total length preserved, the way a bad block
/// or a mixed-up file chunk corrupts an archive at rest), plus `n`
/// internal window swaps within `stream` itself.
inline std::vector<Fault> splice_cases(std::span<const std::uint8_t> stream,
                                       std::span<const std::uint8_t> donor,
                                       std::size_t n, std::uint64_t seed) {
  std::vector<Fault> out;
  if (stream.size() < 8 || donor.size() < 8) return out;
  Rng rng(seed);
  out.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len =
        1 + rng.uniform_index(std::min(donor.size(), stream.size()) / 2);
    const std::size_t from = rng.uniform_index(donor.size() - len + 1);
    const std::size_t to = rng.uniform_index(stream.size() - len + 1);
    Fault f;
    f.label = "splice donor[" + std::to_string(from) + "+" +
              std::to_string(len) + ")@" + std::to_string(to);
    f.bytes.assign(stream.begin(), stream.end());
    std::copy_n(donor.begin() + static_cast<std::ptrdiff_t>(from), len,
                f.bytes.begin() + static_cast<std::ptrdiff_t>(to));
    out.push_back(std::move(f));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = 1 + rng.uniform_index(stream.size() / 4 + 1);
    const std::size_t a = rng.uniform_index(stream.size() - len + 1);
    const std::size_t b = rng.uniform_index(stream.size() - len + 1);
    Fault f;
    f.label = "swap[" + std::to_string(a) + "<->" + std::to_string(b) + "+" +
              std::to_string(len) + ")";
    f.bytes.assign(stream.begin(), stream.end());
    std::swap_ranges(f.bytes.begin() + static_cast<std::ptrdiff_t>(a),
                     f.bytes.begin() + static_cast<std::ptrdiff_t>(a + len),
                     f.bytes.begin() + static_cast<std::ptrdiff_t>(b));
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace cliz::fault
