// Per-pass entropy framing tests: the framed container (entropy byte bit 7)
// must round-trip every golden-corpus generator for both entropy backends,
// produce byte-identical streams at any thread count, decode to exactly the
// serial reconstruction, and reject truncated or corrupted offset tables as
// clean cliz::Error. The serial (default) layout stays locked byte-exactly
// by test_golden_streams.cpp; this file owns the framed wire.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault_injection.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/chunked.hpp"
#include "src/core/cliz.hpp"
#include "src/core/codec_context.hpp"
#include "src/core/stage_backends.hpp"
#include "src/lossless/lossless.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

constexpr double kEb = 1e-3;
constexpr float kFill = 9.96921e36f;

// --- the golden-corpus generators (same as test_stage_backends.cpp) ------

NdArray<float> plain_field() {
  const Shape shape({40, 48});
  NdArray<float> a(shape);
  Rng rng(1001);
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t c = 0; c < 48; ++c) {
      const double v = 0.03 * static_cast<double>(r) -
                       0.015 * static_cast<double>(c) +
                       0.25 * static_cast<double>((r + c) % 9) +
                       0.05 * rng.uniform();
      a[r * 48 + c] = static_cast<float>(v);
    }
  }
  return a;
}

struct MaskedField {
  NdArray<float> data;
  MaskMap mask;
};

MaskedField masked_field() {
  const Shape shape({16, 12, 14});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(2002);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 13 == 0) {
      mask.mutable_data()[i] = 0;
      data[i] = kFill;
      continue;
    }
    const double v = 0.1 * static_cast<double>(i % 14) -
                     0.07 * static_cast<double>((i / 14) % 12) +
                     0.04 * rng.uniform();
    data[i] = static_cast<float>(v);
  }
  return {std::move(data), std::move(mask)};
}

NdArray<float> periodic_field() {
  const Shape shape({36, 10, 12});
  NdArray<float> a(shape);
  Rng rng(3003);
  for (std::size_t t = 0; t < 36; ++t) {
    const double season =
        0.1 * static_cast<double>((t % 6) * (11 - (t % 6)));
    for (std::size_t p = 0; p < 120; ++p) {
      const double v = season + 0.02 * static_cast<double>(p % 12) +
                       0.03 * rng.uniform();
      a[t * 120 + p] = static_cast<float>(v);
    }
  }
  return a;
}

NdArray<float> chunked_field() {
  const Shape shape({30, 12, 10});
  NdArray<float> a(shape);
  Rng rng(4004);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double v = 0.05 * static_cast<double>(i % 120) -
                     0.002 * static_cast<double>(i / 120) +
                     0.03 * rng.uniform();
    a[i] = static_cast<float>(v);
  }
  return a;
}

PipelineConfig masked_config() {
  PipelineConfig c = PipelineConfig::defaults(3);
  c.dynamic_fitting = true;
  c.classify_bins = true;
  return c;
}

PipelineConfig periodic_config() {
  PipelineConfig c = PipelineConfig::defaults(3);
  c.period = 6;
  c.time_dim = 0;
  return c;
}

struct ThreadCountGuard {
  int saved = hardware_threads();
  ~ThreadCountGuard() { set_thread_count(saved); }
};

constexpr EntropyBackend kBackends[] = {EntropyBackend::kHuffman,
                                        EntropyBackend::kTans};

ClizOptions framed_options(EntropyBackend entropy) {
  ClizOptions o;
  o.entropy = entropy;
  o.frame_passes = true;
  return o;
}

/// One (dataset, pipeline, mask) cell of the golden-generator matrix.
struct Case {
  std::string name;
  NdArray<float> data;
  PipelineConfig config;
  const MaskMap* mask = nullptr;
};

std::vector<Case> golden_cases(const MaskedField& mf) {
  std::vector<Case> cases;
  cases.push_back({"plain", plain_field(), PipelineConfig::defaults(2)});
  cases.push_back({"masked", mf.data, masked_config(), &mf.mask});
  cases.push_back({"periodic", periodic_field(), periodic_config()});
  cases.push_back({"chunked", chunked_field(), PipelineConfig::defaults(3)});
  return cases;
}

// --- round trips ---------------------------------------------------------

TEST(EntropyFraming, FramedRoundTripsGoldenGenerators) {
  const MaskedField mf = masked_field();
  for (const Case& c : golden_cases(mf)) {
    for (const EntropyBackend entropy : kBackends) {
      SCOPED_TRACE(c.name + " entropy=" + entropy_backend_name(entropy));
      ClizOptions serial;
      serial.entropy = entropy;
      const ClizOptions framed = framed_options(entropy);

      CodecContext cctx;
      const auto framed_stream = ClizCompressor(c.config, framed)
                                     .compress(c.data, kEb, c.mask, cctx);
      EXPECT_TRUE(cctx.stats.frame_passes);
      EXPECT_GT(cctx.stats.frame_segments, 0u);
      const auto serial_stream =
          ClizCompressor(c.config, serial).compress(c.data, kEb, c.mask);

      CodecContext dctx;
      const auto framed_out = ClizCompressor::decompress(framed_stream, dctx);
      EXPECT_TRUE(dctx.stats.frame_passes);
      EXPECT_EQ(dctx.stats.frame_segments, cctx.stats.frame_segments);
      EXPECT_LE(error_stats(c.data.flat(), framed_out.flat(), c.mask)
                    .max_abs_error,
                kEb);

      // Framing reorders nothing: the framed reconstruction is bit-identical
      // to the serial one, not merely within the bound.
      const auto serial_out = ClizCompressor::decompress(serial_stream);
      ASSERT_EQ(framed_out.size(), serial_out.size());
      for (std::size_t i = 0; i < framed_out.size(); ++i) {
        ASSERT_EQ(framed_out[i], serial_out[i]) << "value " << i;
      }
      if (c.mask != nullptr) {
        for (std::size_t i = 0; i < framed_out.size(); ++i) {
          if (!c.mask->valid(i)) {
            ASSERT_EQ(framed_out[i], kFill);
          }
        }
      }
    }
  }
}

TEST(EntropyFraming, FramedRoundTripsChunkedFrames) {
  const auto data = chunked_field();
  for (const EntropyBackend entropy : kBackends) {
    SCOPED_TRACE(std::string("entropy=") + entropy_backend_name(entropy));
    ChunkedOptions copts;
    copts.chunks = 4;
    copts.codec = framed_options(entropy);
    const auto frame = chunked_compress(data, kEb,
                                        PipelineConfig::defaults(3), nullptr,
                                        copts);
    const auto out = chunked_decompress(frame);
    EXPECT_LE(error_stats(data.flat(), out.flat()).max_abs_error, kEb);
  }
}

// --- thread-count invariance ---------------------------------------------

TEST(EntropyFraming, FramedStreamsAreThreadCountInvariant) {
  // The segment table is a pure function of the code stream (fetch marks
  // sub-split at a fixed symbol grain), so framed streams — like serial
  // ones — must not depend on the worker count, and every thread count must
  // decode them to the same bytes.
  const MaskedField mf = masked_field();
  const auto cases = golden_cases(mf);
  ThreadCountGuard guard;
  for (const EntropyBackend entropy : kBackends) {
    const ClizOptions opts = framed_options(entropy);
    for (const Case& c : cases) {
      SCOPED_TRACE(c.name + " entropy=" + entropy_backend_name(entropy));
      set_thread_count(1);
      const auto reference =
          ClizCompressor(c.config, opts).compress(c.data, kEb, c.mask);
      const auto reference_out = ClizCompressor::decompress(reference);
      for (const int threads : {2, 8}) {
        set_thread_count(threads);
        EXPECT_EQ(ClizCompressor(c.config, opts)
                      .compress(c.data, kEb, c.mask),
                  reference)
            << "framed stream differs at " << threads << " thread(s)";
        const auto out = ClizCompressor::decompress(reference);
        ASSERT_EQ(out.size(), reference_out.size());
        for (std::size_t i = 0; i < out.size(); ++i) {
          ASSERT_EQ(out[i], reference_out[i])
              << "decode differs at " << threads << " thread(s), value " << i;
        }
      }
    }
  }
}

// --- framed container faults ---------------------------------------------

/// First byte where the two raw (lossless-unwrapped) streams diverge: the
/// entropy byte, whose framed copy sets bit 7. The framed container's
/// layout byte follows immediately in unclassified streams.
std::size_t entropy_byte_offset(const std::vector<std::uint8_t>& serial,
                                const std::vector<std::uint8_t>& framed) {
  const std::size_t pos = fault::first_divergence(serial, framed);
  if (pos >= std::min(serial.size(), framed.size())) {
    ADD_FAILURE() << "streams do not diverge";
    return 0;
  }
  return pos;
}

TEST(EntropyFraming, CorruptOffsetTableIsCleanError) {
  const auto data = plain_field();
  const auto serial_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(2)).compress(data, kEb));
  const auto framed_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(2),
                     framed_options(EntropyBackend::kHuffman))
          .compress(data, kEb));
  const std::size_t pos = entropy_byte_offset(serial_raw, framed_raw);
  ASSERT_EQ(serial_raw[pos], 0u);     // (huffman id 0 << 1) | unclassified
  ASSERT_EQ(framed_raw[pos], 0x80u);  // same, framed bit set
  ASSERT_EQ(framed_raw[pos + 1], 1u);  // container layout id

  // Unknown layout ids reject before any table parsing.
  const std::uint8_t layouts[] = {0, 2, 3, 0x7F, 0xFF};
  for (const auto& fault :
       fault::byte_override_cases(framed_raw, pos + 1, layouts)) {
    const auto stream = lossless_compress(fault.bytes);
    EXPECT_THROW((void)ClizCompressor::decompress(stream), Error)
        << fault.label;
  }

  // The segment-count varint and the first (n_syms, n_bytes) pairs live in
  // the bytes after the layout id. Any corruption there must fail the
  // count/coverage/payload-sum validation (or a downstream bounds check) —
  // never crash, never read out of bounds. 0 segments cannot cover the
  // code stream; large counts walk the cursor into the coding tables.
  for (std::size_t off = 2; off <= 6; ++off) {
    const std::uint8_t values[] = {0x00, 0x01, 0x7F, 0x80, 0xFF};
    for (const auto& fault :
         fault::byte_override_cases(framed_raw, pos + off, values)) {
      if (fault.bytes == framed_raw) continue;  // wrote the original value
      const auto stream = lossless_compress(fault.bytes);
      try {
        const auto out = ClizCompressor::decompress(stream);
        // Only acceptable if the mutation still describes the exact same
        // payload split — then the decode must be untouched.
        const auto expected = ClizCompressor::decompress(
            lossless_compress(framed_raw));
        ASSERT_EQ(out.size(), expected.size()) << fault.label;
        for (std::size_t i = 0; i < out.size(); ++i) {
          ASSERT_EQ(out[i], expected[i]) << fault.label << " value " << i;
        }
      } catch (const Error&) {
        // detected corruption — the expected outcome
      }
    }
  }
}

TEST(EntropyFraming, TruncatedFramedStreamIsCleanError) {
  const auto data = periodic_field();
  for (const EntropyBackend entropy : kBackends) {
    SCOPED_TRACE(std::string("entropy=") + entropy_backend_name(entropy));
    const auto raw = lossless_decompress(
        ClizCompressor(periodic_config(), framed_options(entropy))
            .compress(data, kEb));
    // Truncating the raw stream anywhere — offset table, coding tables or
    // payload — must surface as Error once re-wrapped, never as a crash or
    // an out-of-bounds read.
    for (const auto& fault : fault::truncation_cases(raw, 32)) {
      const auto stream = lossless_compress(fault.bytes);
      EXPECT_THROW((void)ClizCompressor::decompress(stream), Error)
          << fault.label;
    }
  }
}

TEST(EntropyFraming, FramedStreamMutationsNeverCrash) {
  // Seeded bit flips across the whole framed stream (lossless container
  // included): decode must reject or reproduce, never crash.
  const auto data = chunked_field();
  for (const EntropyBackend entropy : kBackends) {
    const auto stream =
        ClizCompressor(PipelineConfig::defaults(3), framed_options(entropy))
            .compress(data, kEb);
    for (const auto& fault : fault::bit_flip_cases(stream, 60, 707)) {
      try {
        (void)ClizCompressor::decompress(fault.bytes);
      } catch (const Error&) {
        // detected corruption
      } catch (const std::bad_alloc&) {
        // bounded allocation bomb
      }
    }
  }
}

// --- stats & tuner surface -----------------------------------------------

TEST(EntropyFraming, StatsRecordFramingOnBothSides) {
  const auto data = plain_field();
  CodecContext cctx;
  const auto stream =
      ClizCompressor(PipelineConfig::defaults(2),
                     framed_options(EntropyBackend::kHuffman))
          .compress(data, kEb, nullptr, cctx);
  EXPECT_TRUE(cctx.stats.frame_passes);
  EXPECT_NE(cctx.stats.to_json().find("\"frame_passes\":true"),
            std::string::npos);
  CodecContext dctx;
  (void)ClizCompressor::decompress(stream, dctx);
  EXPECT_TRUE(dctx.stats.frame_passes);
  EXPECT_EQ(dctx.stats.frame_segments, cctx.stats.frame_segments);

  CodecContext sctx;
  (void)ClizCompressor(PipelineConfig::defaults(2))
      .compress(data, kEb, nullptr, sctx);
  EXPECT_FALSE(sctx.stats.frame_passes);
  EXPECT_EQ(sctx.stats.frame_segments, 0u);
}

TEST(EntropyFraming, DefaultStreamsStayUnframed) {
  // The default options must keep writing the serial container: bit 7 of
  // the entropy byte clear, stream byte-identical to a pre-framing encode
  // (the golden corpus locks the exact bytes; this guards the flag default).
  EXPECT_FALSE(ClizOptions{}.frame_passes);
  const auto data = plain_field();
  const auto raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(2)).compress(data, kEb));
  const auto framed_raw = lossless_decompress(
      ClizCompressor(PipelineConfig::defaults(2),
                     framed_options(EntropyBackend::kHuffman))
          .compress(data, kEb));
  const std::size_t pos = entropy_byte_offset(raw, framed_raw);
  EXPECT_EQ(raw[pos] & 0x80u, 0u);
}

}  // namespace
}  // namespace cliz
