#include "src/core/autotune.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/climate/datasets.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

TEST(Sampling, BlockSampleVolumeNearRate) {
  const Shape shape({60, 90, 120});
  NdArray<float> data(shape);
  for (const double rate : {0.1, 0.01, 0.001}) {
    const auto s = sample_blocks(data, nullptr, rate);
    const double got = static_cast<double>(s.data.size()) /
                       static_cast<double>(data.size());
    EXPECT_GT(got, rate / 8.0) << "rate " << rate;
    EXPECT_LT(got, rate * 8.0) << "rate " << rate;
  }
}

TEST(Sampling, BlockSampleCopiesActualValues) {
  const Shape shape({30, 30});
  NdArray<float> data(shape);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i);
  }
  const auto s = sample_blocks(data, nullptr, 0.25);
  // Every sampled value must exist in the source.
  for (std::size_t i = 0; i < s.data.size(); ++i) {
    const float v = s.data[i];
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, static_cast<float>(data.size()));
    EXPECT_EQ(v, std::floor(v));
  }
}

TEST(Sampling, MaskCroppedConsistentlyWithData) {
  const Shape shape({24, 24});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const bool valid = (i / 24 + i % 24) % 3 != 0;
    mask.mutable_data()[i] = valid ? 1 : 0;
    data[i] = valid ? static_cast<float>(i) : 9.9e36f;
  }
  const auto s = sample_blocks(data, &mask, 0.25);
  ASSERT_TRUE(s.mask.has_value());
  for (std::size_t i = 0; i < s.data.size(); ++i) {
    if (s.mask->valid(i)) {
      EXPECT_LT(s.data[i], 1e6f);
    } else {
      EXPECT_GT(s.data[i], 1e30f);
    }
  }
}

TEST(Sampling, TimePreservingKeepsFullTimeExtent) {
  const Shape shape({48, 40, 40});
  NdArray<float> data(shape);
  const auto s = sample_time_preserving(data, nullptr, 0.05, 0);
  EXPECT_EQ(s.data.shape().dim(0), 48u);
  EXPECT_LT(s.data.shape().dim(1), 40u);
  const double got = static_cast<double>(s.data.size()) /
                     static_cast<double>(data.size());
  EXPECT_LT(got, 0.4);
}

TEST(Sampling, TimeRowsHaveFullLengthAndSkipMaskedRows) {
  const Shape shape({32, 8, 8});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  // Mask out half the columns entirely.
  for (std::size_t t = 0; t < 32; ++t) {
    for (std::size_t p = 0; p < 32; ++p) {
      mask.mutable_data()[t * 64 + p] = 0;
    }
  }
  const auto rows = sample_time_rows(data, &mask, 0, 8, 99);
  EXPECT_GE(rows.size(), 1u);
  for (const auto& r : rows) EXPECT_EQ(r.size(), 32u);
}

TEST(Sampling, InvalidRateThrows) {
  NdArray<float> data(Shape({8, 8}));
  EXPECT_THROW((void)sample_blocks(data, nullptr, 0.0), Error);
  EXPECT_THROW((void)sample_blocks(data, nullptr, 1.5), Error);
}

TEST(Autotune, SearchSpaceSizeMatchesPaper) {
  // SSH-like: periodic 3-D dataset -> 2 (period) x 2 (classify) x 6 (perm)
  // x 4 (fusion) x 2 (fitting) = 192 pipelines. Non-periodic -> 96.
  auto field = make_ssh(0.12, 500);
  AutotuneOptions opts;
  opts.sampling_rate = 0.02;
  const auto result =
      autotune(field.data, 1e-3, field.mask_ptr(), opts);
  ASSERT_TRUE(result.period.has_value());
  EXPECT_EQ(result.period->period, 12u);
  EXPECT_EQ(result.candidates.size(), 192u);
}

TEST(Autotune, NonPeriodicDatasetGetsHalfTheSpace) {
  auto field = make_hurricane_t(0.06, 501);
  AutotuneOptions opts;
  opts.sampling_rate = 0.02;
  const auto result = autotune(field.data, 1e-2, nullptr, opts);
  EXPECT_FALSE(result.period.has_value());
  EXPECT_EQ(result.candidates.size(), 96u);
}

TEST(Autotune, CandidatesSortedByEstimatedRatio) {
  auto field = make_ssh(0.12, 502);
  AutotuneOptions opts;
  opts.sampling_rate = 0.02;
  const auto result = autotune(field.data, 1e-3, field.mask_ptr(), opts);
  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    EXPECT_GE(result.candidates[i - 1].estimated_ratio,
              result.candidates[i].estimated_ratio);
  }
  EXPECT_EQ(result.best_estimated_ratio,
            result.candidates.front().estimated_ratio);
}

TEST(Autotune, TogglesShrinkSearchSpace) {
  auto field = make_ssh(0.12, 503);
  AutotuneOptions opts;
  opts.sampling_rate = 0.02;
  opts.consider_periodicity = false;
  opts.consider_classification = false;
  opts.consider_fusion = false;
  opts.consider_permutation = false;
  opts.consider_fitting = false;
  const auto result = autotune(field.data, 1e-3, field.mask_ptr(), opts);
  EXPECT_EQ(result.candidates.size(), 1u);
}

TEST(Autotune, BestConfigCompressesFullDataWithinBound) {
  auto field = make_ssh(0.12, 504);
  AutotuneOptions opts;
  opts.sampling_rate = 0.02;
  const auto result = autotune(field.data, 1e-3, field.mask_ptr(), opts);
  const ClizCompressor codec(result.best);
  const auto stream = codec.compress(field.data, 1e-3, field.mask_ptr());
  const auto recon = ClizCompressor::decompress(stream);
  const auto stats =
      error_stats(field.data.flat(), recon.flat(), field.mask_ptr());
  EXPECT_LE(stats.max_abs_error, 1e-3);
}

TEST(Autotune, PeriodicPipelineChosenForStronglySeasonalData) {
  auto field = make_ssh(0.12, 505);
  AutotuneOptions opts;
  opts.sampling_rate = 0.05;
  const auto result = autotune(field.data, 1e-3, field.mask_ptr(), opts);
  EXPECT_EQ(result.best.period, 12u);
}

TEST(Autotune, RefinementRerankesTopCandidates) {
  auto field = make_ssh(0.15, 507);
  AutotuneOptions coarse;
  coarse.sampling_rate = 0.005;
  AutotuneOptions refined = coarse;
  refined.refine_top_k = 8;
  const auto r0 = autotune(field.data, 1e-3, field.mask_ptr(), coarse);
  const auto r1 = autotune(field.data, 1e-3, field.mask_ptr(), refined);

  // The refined pick must be at least as good on the FULL data.
  const auto size_of = [&](const PipelineConfig& c) {
    return ClizCompressor(c)
        .compress(field.data, 1e-3, field.mask_ptr())
        .size();
  };
  EXPECT_LE(size_of(r1.best), size_of(r0.best) * 102 / 100)
      << "refined pipeline clearly worse than the coarse pick";
  EXPECT_EQ(r1.candidates.size(), r0.candidates.size());
  // Refinement re-runs K trials, so it costs more time.
  EXPECT_GT(r1.tuning_seconds, r0.tuning_seconds * 0.8);
}

TEST(Autotune, RefinementDefaultOff) {
  AutotuneOptions opts;
  EXPECT_EQ(opts.refine_top_k, 0u);
}

TEST(Autotune, LowerSamplingRateIsFaster) {
  auto field = make_ssh(0.2, 506);
  AutotuneOptions coarse;
  coarse.sampling_rate = 0.001;
  AutotuneOptions fine;
  fine.sampling_rate = 0.1;
  const auto r_coarse = autotune(field.data, 1e-3, field.mask_ptr(), coarse);
  const auto r_fine = autotune(field.data, 1e-3, field.mask_ptr(), fine);
  EXPECT_LT(r_coarse.tuning_seconds, r_fine.tuning_seconds);
  EXPECT_LT(r_coarse.sample_points, r_fine.sample_points);
}

}  // namespace
}  // namespace cliz
