#include "src/core/periodic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"

namespace cliz {
namespace {

TEST(Periodic, TemplateOfPerfectlyPeriodicDataIsOnePeriod) {
  // data[t][x] = pattern[t % 4][x]; the template must equal the pattern and
  // the residual must be zero.
  const Shape shape({12, 5});
  NdArray<float> data(shape);
  for (std::size_t t = 0; t < 12; ++t) {
    for (std::size_t x = 0; x < 5; ++x) {
      data.at({t, x}) =
          static_cast<float>(std::sin(static_cast<double>(t % 4)) +
                             static_cast<double>(x));
    }
  }
  const auto tmpl = periodic_template(data, 0, 4, nullptr);
  EXPECT_EQ(tmpl.shape(), Shape({4, 5}));
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t x = 0; x < 5; ++x) {
      EXPECT_NEAR(tmpl.at({t, x}), data.at({t, x}), 1e-6);
    }
  }

  NdArray<float> residual = data;
  subtract_template(residual, tmpl, 0, nullptr);
  for (std::size_t i = 0; i < residual.size(); ++i) {
    EXPECT_NEAR(residual[i], 0.0f, 1e-5);
  }
}

TEST(Periodic, SubtractThenAddIsIdentity) {
  const Shape shape({10, 4, 3});
  NdArray<float> data(shape);
  Rng rng(5);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(rng.uniform(-3.0, 3.0));
  }
  const auto original = data;
  const auto tmpl = periodic_template(data, 0, 5, nullptr);
  subtract_template(data, tmpl, 0, nullptr);
  add_template(data, tmpl, 0, nullptr);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i], original[i], 1e-5);
  }
}

TEST(Periodic, TimeDimNeedNotBeFirst) {
  // Time as the middle dimension.
  const Shape shape({3, 8, 2});
  NdArray<float> data(shape);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t t = 0; t < 8; ++t) {
      for (std::size_t b = 0; b < 2; ++b) {
        data.at({a, t, b}) = static_cast<float>((t % 4) * 10 + a + b);
      }
    }
  }
  const auto tmpl = periodic_template(data, 1, 4, nullptr);
  EXPECT_EQ(tmpl.shape(), Shape({3, 4, 2}));
  NdArray<float> residual = data;
  subtract_template(residual, tmpl, 1, nullptr);
  for (std::size_t i = 0; i < residual.size(); ++i) {
    EXPECT_NEAR(residual[i], 0.0f, 1e-5);
  }
}

TEST(Periodic, PartialLastPeriodHandled) {
  // 10 samples with period 4: the last period is incomplete; averaging
  // counts differ per phase but reassembly must still be exact.
  const Shape shape({10, 2});
  NdArray<float> data(shape);
  Rng rng(6);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  const auto original = data;
  const auto tmpl = periodic_template(data, 0, 4, nullptr);
  subtract_template(data, tmpl, 0, nullptr);
  add_template(data, tmpl, 0, nullptr);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i], original[i], 1e-5);
  }
}

TEST(Periodic, MaskedPointsExcludedFromAverages) {
  const Shape shape({4, 3});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  // Column 0: values 1, 3, garbage(masked), 5 over time -> mean of valid = 3.
  data.at({0, 0}) = 1.0f;
  data.at({1, 0}) = 3.0f;
  data.at({2, 0}) = 1e30f;
  mask.mutable_data()[shape.offset(DimVec{2, 0})] = 0;
  data.at({3, 0}) = 5.0f;
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t x = 1; x < 3; ++x) data.at({t, x}) = 2.0f;
  }
  const auto tmpl = periodic_template(data, 0, 1, &mask);
  EXPECT_NEAR(tmpl.at({0, 0}), 3.0f, 1e-6);
  EXPECT_NEAR(tmpl.at({0, 1}), 2.0f, 1e-6);
}

TEST(Periodic, FullyMaskedColumnTemplateIsZero) {
  const Shape shape({4, 2});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  for (std::size_t t = 0; t < 4; ++t) {
    data.at({t, 0}) = 1e30f;
    mask.mutable_data()[shape.offset(DimVec{t, 0})] = 0;
    data.at({t, 1}) = 7.0f;
  }
  const auto tmpl = periodic_template(data, 0, 2, &mask);
  EXPECT_EQ(tmpl.at({0, 0}), 0.0f);
  EXPECT_EQ(tmpl.at({1, 0}), 0.0f);
  EXPECT_NEAR(tmpl.at({0, 1}), 7.0f, 1e-6);
}

TEST(Periodic, TemplateMaskMarksAnyValidContribution) {
  const Shape shape({4, 2});
  auto mask = MaskMap::all_valid(shape);
  // Column 0 fully masked; column 1 masked at t=0 only.
  for (std::size_t t = 0; t < 4; ++t) {
    mask.mutable_data()[shape.offset(DimVec{t, 0})] = 0;
  }
  mask.mutable_data()[shape.offset(DimVec{0, 1})] = 0;
  const auto tmask = periodic_template_mask(mask, 0, 2);
  EXPECT_EQ(tmask.shape(), Shape({2, 2}));
  EXPECT_FALSE(tmask.valid(0));  // (0, 0)
  EXPECT_TRUE(tmask.valid(1));   // (0, 1): t=2 contributes
  EXPECT_FALSE(tmask.valid(2));  // (1, 0)
  EXPECT_TRUE(tmask.valid(3));   // (1, 1)
}

TEST(Periodic, SubtractSkipsMaskedPoints) {
  const Shape shape({4, 2});
  NdArray<float> data(shape);
  auto mask = MaskMap::all_valid(shape);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = 10.0f;
  data.at({1, 1}) = 1e30f;
  mask.mutable_data()[shape.offset(DimVec{1, 1})] = 0;
  const auto tmpl = periodic_template(data, 0, 2, &mask);
  subtract_template(data, tmpl, 0, &mask);
  EXPECT_EQ(data.at({1, 1}), 1e30f);  // untouched
  EXPECT_NEAR(data.at({0, 0}), 0.0f, 1e-5);
}

TEST(Periodic, RejectsBadPeriod) {
  NdArray<float> data(Shape({4, 2}));
  EXPECT_THROW((void)periodic_template(data, 0, 5, nullptr), Error);
  EXPECT_THROW((void)periodic_template(data, 0, 0, nullptr), Error);
  EXPECT_THROW((void)periodic_template(data, 3, 2, nullptr), Error);
}

}  // namespace
}  // namespace cliz
