// Double-precision support: CliZ and SZ3 compress float64 data with bounds
// far below float32 resolution, record the sample type in the stream, and
// reject mismatched decompress variants.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/core/cliz.hpp"
#include "src/qoz/qoz.hpp"
#include "src/sperr/sperr_like.hpp"
#include "src/sz3/lorenzo.hpp"
#include "src/sz3/sz3.hpp"
#include "src/zfp/zfp_like.hpp"

namespace cliz {
namespace {

NdArray<double> smooth_f64(const DimVec& dims, std::uint64_t seed,
                           double noise = 1e-9) {
  const Shape shape(dims);
  NdArray<double> a(shape);
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto c = shape.coords(i);
    double v = 1.0;
    for (std::size_t d = 0; d < c.size(); ++d) {
      v += 0.1 * std::sin(0.07 * static_cast<double>(c[d]));
    }
    a[i] = v + noise * rng.normal();
  }
  return a;
}

double max_err(const NdArray<double>& a, const NdArray<double>& b,
               const MaskMap* mask = nullptr) {
  double e = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (mask != nullptr && !mask->valid(i)) continue;
    e = std::max(e, std::abs(a[i] - b[i]));
  }
  return e;
}

class F64BoundSweep : public ::testing::TestWithParam<double> {};

TEST_P(F64BoundSweep, ClizHonoursSubFloatBounds) {
  const double eb = GetParam();
  const auto data = smooth_f64({16, 18, 20}, 7, eb * 0.3);
  PipelineConfig config = PipelineConfig::defaults(3);
  config.classify_bins = true;
  const auto stream = ClizCompressor(config).compress(data, eb);
  const auto recon = ClizCompressor::decompress_f64(stream);
  ASSERT_EQ(recon.shape(), data.shape());
  EXPECT_LE(max_err(data, recon), eb);
}

TEST_P(F64BoundSweep, Sz3HonoursSubFloatBounds) {
  const double eb = GetParam();
  const auto data = smooth_f64({24, 26}, 8, eb * 0.3);
  const auto stream = Sz3Compressor().compress(data, eb);
  const auto recon = Sz3Compressor::decompress_f64(stream);
  EXPECT_LE(max_err(data, recon), eb);
}

// Bounds far below float32's ~1e-7 relative resolution at magnitude ~1.
INSTANTIATE_TEST_SUITE_P(Bounds, F64BoundSweep,
                         ::testing::Values(1e-3, 1e-6, 1e-9, 1e-12));

TEST(Float64, PrecisionActuallyExceedsFloat32) {
  // Round-tripping through a float32 pipeline could never satisfy a 1e-12
  // bound on O(1) data; the f64 path must.
  const auto data = smooth_f64({32, 32}, 9, 1e-13);
  const double eb = 1e-12;
  const auto stream = ClizCompressor(PipelineConfig::defaults(2))
                          .compress(data, eb);
  const auto recon = ClizCompressor::decompress_f64(stream);
  EXPECT_LE(max_err(data, recon), eb);
  // Sanity: casting to float32 would already violate the bound.
  double cast_err = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    cast_err = std::max(
        cast_err,
        std::abs(data[i] - static_cast<double>(static_cast<float>(data[i]))));
  }
  EXPECT_GT(cast_err, eb);
}

TEST(Float64, MaskedPeriodicClassifiedRoundTrip) {
  const Shape shape({24, 10, 12});
  NdArray<double> data(shape);
  auto mask = MaskMap::all_valid(shape);
  Rng rng(10);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 7 == 0) {
      mask.mutable_data()[i] = 0;
      data[i] = 9.96921e36;
    } else {
      data[i] = std::cos(2.0 * std::numbers::pi *
                         static_cast<double>(i / 120) / 12.0) +
                1e-10 * rng.normal();
    }
  }
  PipelineConfig config = PipelineConfig::defaults(3);
  config.period = 12;
  config.classify_bins = true;
  const double eb = 1e-9;
  const auto stream = ClizCompressor(config).compress(data, eb, &mask);
  const auto recon = ClizCompressor::decompress_f64(stream);
  EXPECT_LE(max_err(data, recon, &mask), eb);
  for (std::size_t i = 0; i < recon.size(); ++i) {
    if (!mask.valid(i)) {
      EXPECT_EQ(recon[i], static_cast<double>(9.96921e36f));
    }
  }
}

TEST(Float64, EveryBaselineCodecHonoursSubFloatBounds) {
  const auto data = smooth_f64({16, 18, 20}, 13, 3e-10);
  const double eb = 1e-9;
  {
    const auto s = QozCompressor().compress(data, eb);
    EXPECT_LE(max_err(data, QozCompressor::decompress_f64(s)), eb) << "qoz";
  }
  {
    const auto s = LorenzoCompressor().compress(data, eb);
    EXPECT_LE(max_err(data, LorenzoCompressor::decompress_f64(s)), eb)
        << "sz2";
  }
  {
    const auto s = ZfpLikeCompressor().compress(data, eb);
    EXPECT_LE(max_err(data, ZfpLikeCompressor::decompress_f64(s)), eb)
        << "zfp";
  }
  {
    const auto s = SperrLikeCompressor().compress(data, eb);
    EXPECT_LE(max_err(data, SperrLikeCompressor::decompress_f64(s)), eb)
        << "sperr";
  }
}

TEST(Float64, BaselineDtypeMismatchRejected) {
  const auto data = smooth_f64({12, 12}, 14);
  EXPECT_THROW((void)QozCompressor::decompress(
                   QozCompressor().compress(data, 1e-6)),
               Error);
  EXPECT_THROW((void)LorenzoCompressor::decompress(
                   LorenzoCompressor().compress(data, 1e-6)),
               Error);
  EXPECT_THROW((void)ZfpLikeCompressor::decompress(
                   ZfpLikeCompressor().compress(data, 1e-6)),
               Error);
  EXPECT_THROW((void)SperrLikeCompressor::decompress(
                   SperrLikeCompressor().compress(data, 1e-6)),
               Error);
}

TEST(Float64, DtypeMismatchRejected) {
  const auto d64 = smooth_f64({12, 12}, 11);
  NdArray<float> d32(Shape({12, 12}));
  for (std::size_t i = 0; i < d32.size(); ++i) {
    d32[i] = static_cast<float>(d64[i]);
  }
  const ClizCompressor codec(PipelineConfig::defaults(2));
  const auto s64 = codec.compress(d64, 1e-6);
  const auto s32 = codec.compress(d32, 1e-6);
  EXPECT_THROW((void)ClizCompressor::decompress(s64), Error);
  EXPECT_THROW((void)ClizCompressor::decompress_f64(s32), Error);
  const auto s64_sz3 = Sz3Compressor().compress(d64, 1e-6);
  EXPECT_THROW((void)Sz3Compressor::decompress(s64_sz3), Error);
}

TEST(Float64, DoubleStreamsSmallerThanRawDouble) {
  const auto data = smooth_f64({40, 40}, 12, 1e-8);
  const auto stream = Sz3Compressor().compress(data, 1e-6);
  EXPECT_LT(stream.size(), data.size() * sizeof(double) / 4);
}

}  // namespace
}  // namespace cliz
