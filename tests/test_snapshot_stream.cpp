#include "src/core/snapshot_stream.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/climate/datasets.hpp"
#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/metrics/metrics.hpp"

namespace cliz {
namespace {

/// One synthetic snapshot at time t with an annual cycle.
NdArray<float> make_snapshot(const Shape& spatial, std::size_t t,
                             std::uint64_t seed) {
  NdArray<float> s(spatial);
  Rng rng(seed * 10000 + t);
  const double season =
      std::cos(2.0 * std::numbers::pi * static_cast<double>(t) / 12.0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto c = spatial.coords(i);
    s[i] = static_cast<float>(
        std::sin(0.2 * static_cast<double>(c[0])) +
        0.5 * season * std::cos(0.1 * static_cast<double>(c[1])) +
        0.005 * rng.normal());
  }
  return s;
}

PipelineConfig stream_config(std::size_t spatial_ndims, std::size_t period) {
  PipelineConfig config = PipelineConfig::defaults(spatial_ndims + 1);
  config.period = period;
  config.time_dim = 0;
  return config;
}

struct StreamCase {
  std::size_t n_snapshots;
  std::size_t per_block;
};

class SnapshotSweep : public ::testing::TestWithParam<StreamCase> {};

TEST_P(SnapshotSweep, RoundTripWithinBound) {
  const auto& [n, per_block] = GetParam();
  const Shape spatial({14, 18});
  const double eb = 1e-3;
  SnapshotStreamWriter writer(spatial, eb, stream_config(2, 0), nullptr,
                              per_block);
  std::vector<NdArray<float>> originals;
  for (std::size_t t = 0; t < n; ++t) {
    originals.push_back(make_snapshot(spatial, t, 1));
    writer.append(originals.back());
  }
  EXPECT_EQ(writer.snapshots_appended(), n);
  const auto stream = writer.finish();
  const auto recon = snapshot_stream_decompress(stream);
  ASSERT_EQ(recon.shape().dim(0), n);

  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t i = 0; i < spatial.size(); ++i) {
      ASSERT_LE(std::abs(static_cast<double>(
                    recon[t * spatial.size() + i]) -
                    static_cast<double>(originals[t][i])),
                eb)
          << "t=" << t << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, SnapshotSweep,
                         ::testing::Values(StreamCase{1, 12},
                                           StreamCase{5, 12},
                                           StreamCase{12, 12},
                                           StreamCase{13, 12},
                                           StreamCase{36, 12},
                                           StreamCase{37, 5},
                                           StreamCase{24, 24}));

TEST(SnapshotStream, BlocksFlushIncrementally) {
  const Shape spatial({8, 8});
  SnapshotStreamWriter writer(spatial, 1e-2, stream_config(2, 0), nullptr, 4);
  for (std::size_t t = 0; t < 9; ++t) {
    writer.append(make_snapshot(spatial, t, 2));
  }
  EXPECT_EQ(writer.blocks_flushed(), 2u);  // two full blocks of 4
  const auto stream = writer.finish();     // flushes the ninth
  const auto recon = snapshot_stream_decompress(stream);
  EXPECT_EQ(recon.shape().dim(0), 9u);
}

TEST(SnapshotStream, MaskedStreamingRoundTrip) {
  // Persistent spatial mask applied to every block.
  const Shape spatial({10, 12});
  auto mask = MaskMap::all_valid(spatial);
  for (std::size_t i = 0; i < mask.size(); i += 3) mask.mutable_data()[i] = 0;

  const double eb = 1e-3;
  SnapshotStreamWriter writer(spatial, eb, stream_config(2, 0), &mask, 6);
  std::vector<NdArray<float>> originals;
  for (std::size_t t = 0; t < 14; ++t) {
    auto snap = make_snapshot(spatial, t, 3);
    for (std::size_t i = 0; i < snap.size(); ++i) {
      if (!mask.valid(i)) snap[i] = 9.96921e36f;
    }
    originals.push_back(snap);
    writer.append(snap);
  }
  const auto recon = snapshot_stream_decompress(writer.finish());
  for (std::size_t t = 0; t < 14; ++t) {
    for (std::size_t i = 0; i < spatial.size(); ++i) {
      const float got = recon[t * spatial.size() + i];
      if (mask.valid(i)) {
        ASSERT_LE(std::abs(static_cast<double>(got) -
                           static_cast<double>(originals[t][i])),
                  eb);
      } else {
        ASSERT_EQ(got, 9.96921e36f);
      }
    }
  }
}

TEST(SnapshotStream, PeriodicPipelinePerYearBlock) {
  // 24 monthly snapshots in 24-slice blocks: periodic extraction active.
  const Shape spatial({12, 12});
  const double eb = 1e-3;
  SnapshotStreamWriter writer(spatial, eb, stream_config(2, 12), nullptr,
                              24);
  std::vector<NdArray<float>> originals;
  for (std::size_t t = 0; t < 24; ++t) {
    originals.push_back(make_snapshot(spatial, t, 4));
    writer.append(originals.back());
  }
  const auto recon = snapshot_stream_decompress(writer.finish());
  for (std::size_t t = 0; t < 24; ++t) {
    for (std::size_t i = 0; i < spatial.size(); ++i) {
      ASSERT_LE(std::abs(static_cast<double>(
                    recon[t * spatial.size() + i]) -
                    static_cast<double>(originals[t][i])),
                eb);
    }
  }
}

TEST(SnapshotStream, MisuseRejected) {
  const Shape spatial({8, 8});
  EXPECT_THROW(SnapshotStreamWriter(spatial, 0.0, stream_config(2, 0)),
               Error);
  // Wrong pipeline arity.
  EXPECT_THROW(
      SnapshotStreamWriter(spatial, 1e-3, PipelineConfig::defaults(2)),
      Error);
  // Wrong snapshot shape.
  SnapshotStreamWriter writer(spatial, 1e-3, stream_config(2, 0));
  EXPECT_THROW(writer.append(NdArray<float>(Shape({8, 9}))), Error);
  // Finish twice / append after finish.
  writer.append(NdArray<float>(spatial));
  (void)writer.finish();
  EXPECT_THROW((void)writer.finish(), Error);
  EXPECT_THROW(writer.append(NdArray<float>(spatial)), Error);
}

TEST(SnapshotStream, CorruptStreamThrows) {
  const Shape spatial({8, 8});
  SnapshotStreamWriter writer(spatial, 1e-2, stream_config(2, 0));
  writer.append(make_snapshot(spatial, 0, 5));
  auto stream = writer.finish();
  auto truncated = stream;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)snapshot_stream_decompress(truncated), Error);
  EXPECT_THROW((void)snapshot_stream_decompress({}), Error);
}

}  // namespace
}  // namespace cliz
