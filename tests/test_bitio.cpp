#include "src/common/bitio.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace cliz {
namespace {

TEST(BitIo, SingleBitsRoundTrip) {
  BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (const bool b : pattern) w.put_bit(b);
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (const bool b : pattern) EXPECT_EQ(r.get_bit(), b);
}

TEST(BitIo, MultiBitFieldsRoundTrip) {
  BitWriter w;
  w.put_bits(0x5, 3);
  w.put_bits(0xABCD, 16);
  w.put_bits(0x1FFFFFFFFFFFFFull, 53);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(3), 0x5u);
  EXPECT_EQ(r.get_bits(16), 0xABCDu);
  EXPECT_EQ(r.get_bits(53), 0x1FFFFFFFFFFFFFull);
}

class BitWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitWidthSweep, RandomValuesRoundTrip) {
  const int width = GetParam();
  Rng rng(1234 + static_cast<std::uint64_t>(width));
  std::vector<std::uint64_t> values(200);
  const std::uint64_t mask =
      width == 64 ? ~0ull : (1ull << width) - 1;
  for (auto& v : values) v = rng.next_u64() & mask;

  BitWriter w;
  for (const auto v : values) w.put_bits(v, width);
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (const auto v : values) EXPECT_EQ(r.get_bits(width), v);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitWidthSweep,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 15, 16, 17, 31,
                                           32, 33, 48, 57));

TEST(BitIo, BitCountTracksWrites) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  w.put_bits(0, 10);
  EXPECT_EQ(w.bit_count(), 10u);
  w.put_bits(0, 60);
  EXPECT_EQ(w.bit_count(), 70u);
}

TEST(BitIo, FinishPadsToByte) {
  BitWriter w;
  w.put_bit(true);
  const auto bytes = w.finish();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x80);  // MSB-first
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.put_bits(0xFF, 8);
  const auto bytes = w.finish();
  BitReader r(bytes);
  r.get_bits(8);
  EXPECT_THROW(r.get_bit(), Error);
}

TEST(BitIo, EmptyReaderThrowsImmediately) {
  BitReader r({});
  EXPECT_THROW(r.get_bit(), Error);
}

TEST(BitIo, LongStreamCrossesWordBoundaries) {
  Rng rng(99);
  std::vector<bool> bits(10000);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = rng.uniform() < 0.5;
  BitWriter w;
  for (const bool b : bits) w.put_bit(b);
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(r.get_bit(), bits[i]) << "at bit " << i;
  }
}

}  // namespace
}  // namespace cliz
